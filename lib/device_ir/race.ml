(* Barrier-phase race detection over the device IR.

   Two cooperating analyses:

   - a static walk (mirroring {!Validate}'s control-level computation via
     {!Analysis.level_stmts} / {!Analysis.join_level}) that reports
     barriers under divergent control (TSAN004) and malformed or
     out-of-warp shuffles (TSAN005);

   - a bounded concrete/symbolic execution of the thread grid that
     records every shared/global access with its barrier phase, then
     compares accesses pairwise. Values derived from thread coordinates,
     parameters bound from the host launch, and compile-time constants
     stay concrete; anything data-dependent (memory loads, shuffles,
     unbound parameters) becomes [Unknown], which conservatively overlaps
     every index.

   The grid model is deliberately small — [model_block] threads in
   [model_grid] blocks — because the access patterns of the paper's
   reduction kernels are periodic in the warp: one block of 64 threads
   (two warps) plus one extra block exposes every cross-warp and
   cross-block pairing the full grid would. Intra-warp pairs are exempt
   per the pre-Volta warp-synchronous model the codelets target
   (shuffle-based variants deliberately drop intra-warp barriers,
   Section III.C / Listing 4 of the paper). *)

module SM = Analysis.SM

type config = {
  model_block : int;
  model_grid : int;
  loop_fuel : int;
  sample_n : int;
}

let default_config =
  { model_block = 64; model_grid = 2; loop_fuel = 256; sample_n = 4096 }

(* ------------------------------------------------------------------ *)
(* Symbolic values                                                     *)
(* ------------------------------------------------------------------ *)

type sval = Known of int | Unknown

let sv_join a b =
  match (a, b) with Known x, Known y when x = y -> a | _ -> Unknown

(* may the two indices denote the same location? *)
let sv_may_eq a b =
  match (a, b) with Known x, Known y -> x = y | _ -> true

(* do the two index values certainly denote the same location (used only
   to refine a store into a read-modify-write of the same cell)? Both
   being [Unknown] counts as a match when they come from the same
   registers, which is the only way the corpus produces it. *)
let sv_same_loc a b =
  match (a, b) with Known x, Known y -> x = y | Unknown, Unknown -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Access events                                                       *)
(* ------------------------------------------------------------------ *)

type akind = Ld | St | At

type event = {
  ev_bid : int;
  ev_tid : int;
  ev_phase : int;
  ev_space : Ir.space;
  ev_arr : string;
  ev_idx : sval;
  ev_kind : akind;
  ev_loc : string;
  ev_rmw : bool;  (* store whose value derives from a same-phase load of
                     the same cell: a lost update when it races *)
}

(* origin of a register value: the cell it was loaded from, and in which
   phase — used to recognise load/combine/store sequences *)
type origin = Ir.space * string * sval * int

type tctx = {
  cfg : config;
  k_bdim : int;
  k_gdim : int;
  params : sval SM.t;
  tid : int;
  bid : int;
  mutable regs : sval SM.t;
  mutable orig : origin list SM.t;
  mutable phase : int;
  mutable access_since_sync : bool;
  mutable sync_seen : bool;
  (* in execution order: barrier location and whether any memory access
     happened since the previous barrier *)
  mutable syncs : (string * bool) list;
  events : event list ref;
}

let warp_of tid = tid / 32

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let int_of_float_exact f =
  if Float.is_integer f && Float.abs f < 1073741824.0 then
    Known (int_of_float f)
  else Unknown

let rec ev (c : tctx) (e : Ir.exp) : sval =
  match e with
  | Ir.Int n -> Known n
  | Ir.Float f -> int_of_float_exact f
  | Ir.Bool b -> Known (if b then 1 else 0)
  | Ir.Reg r -> ( match SM.find_opt r c.regs with Some v -> v | None -> Unknown)
  | Ir.Param p -> ( match SM.find_opt p c.params with Some v -> v | None -> Unknown)
  | Ir.Special s -> (
      match s with
      | Ir.Thread_idx -> Known c.tid
      | Ir.Block_idx -> Known c.bid
      | Ir.Block_dim -> Known c.k_bdim
      | Ir.Grid_dim -> Known c.k_gdim
      | Ir.Warp_size -> Known 32
      | Ir.Lane_id -> Known (c.tid mod 32)
      | Ir.Warp_id -> Known (c.tid / 32))
  | Ir.Unop (op, a) -> (
      match (op, ev c a) with
      | _, Unknown -> Unknown
      | Ir.Neg, Known v -> Known (-v)
      | Ir.Bnot, Known v -> Known (lnot v)
      | Ir.Lnot, Known v -> Known (if v = 0 then 1 else 0))
  | Ir.Binop (op, a, b) -> ev_binop c op (ev c a) (ev c b)
  | Ir.Select (cnd, a, b) -> (
      match ev c cnd with
      | Known 0 -> ev c b
      | Known _ -> ev c a
      | Unknown -> sv_join (ev c a) (ev c b))

and ev_binop _c op va vb =
  let bool_ p = Known (if p then 1 else 0) in
  match (op, va, vb) with
  (* short-circuits that survive one unknown side *)
  | Ir.Land, Known 0, _ | Ir.Land, _, Known 0 -> Known 0
  | Ir.Lor, Known v, _ when v <> 0 -> Known 1
  | Ir.Lor, _, Known v when v <> 0 -> Known 1
  | Ir.Mul, Known 0, _ | Ir.Mul, _, Known 0 -> Known 0
  | _, Unknown, _ | _, _, Unknown -> Unknown
  | op, Known x, Known y -> (
      match op with
      | Ir.Add -> Known (x + y)
      | Ir.Sub -> Known (x - y)
      | Ir.Mul -> Known (x * y)
      | Ir.Div -> if y = 0 then Unknown else Known (x / y)
      | Ir.Rem -> if y = 0 then Unknown else Known (x mod y)
      | Ir.Min -> Known (min x y)
      | Ir.Max -> Known (max x y)
      | Ir.And -> Known (x land y)
      | Ir.Or -> Known (x lor y)
      | Ir.Xor -> Known (x lxor y)
      | Ir.Shl -> Known (x lsl y)
      | Ir.Shr -> Known (x asr y)
      | Ir.Eq -> bool_ (x = y)
      | Ir.Ne -> bool_ (x <> y)
      | Ir.Lt -> bool_ (x < y)
      | Ir.Le -> bool_ (x <= y)
      | Ir.Gt -> bool_ (x > y)
      | Ir.Ge -> bool_ (x >= y)
      | Ir.Land -> bool_ (x <> 0 && y <> 0)
      | Ir.Lor -> bool_ (x <> 0 || y <> 0))

(* ------------------------------------------------------------------ *)
(* Thread execution                                                    *)
(* ------------------------------------------------------------------ *)

let origins_of_exp (c : tctx) (e : Ir.exp) : origin list =
  Analysis.SS.fold
    (fun r acc ->
      match SM.find_opt r c.orig with Some os -> os @ acc | None -> acc)
    (Analysis.exp_uses e) []

let dedup_origins (os : origin list) : origin list =
  let rec go seen = function
    | [] -> List.rev seen
    | o :: tl -> if List.mem o seen then go seen tl else go (o :: seen) tl
  in
  (* cap the per-register origin set; long accumulation chains only ever
     re-derive the same few cells *)
  let os = go [] os in
  if List.length os > 8 then List.filteri (fun i _ -> i < 8) os else os

let emit (c : tctx) ~loc ~space ~arr ~idx ~kind ~rmw =
  c.access_since_sync <- true;
  c.events :=
    {
      ev_bid = c.bid;
      ev_tid = c.tid;
      ev_phase = c.phase;
      ev_space = space;
      ev_arr = arr;
      ev_idx = idx;
      ev_kind = kind;
      ev_loc = loc;
      ev_rmw = rmw;
    }
    :: !(c.events)

let merge_regs (a : sval SM.t) (b : sval SM.t) : sval SM.t =
  SM.merge
    (fun _ va vb ->
      match (va, vb) with
      | Some x, Some y -> Some (sv_join x y)
      | _ -> Some Unknown)
    a b

let merge_orig (a : origin list SM.t) (b : origin list SM.t) : origin list SM.t =
  SM.merge
    (fun _ oa ob ->
      match (oa, ob) with
      | Some x, Some y -> Some (dedup_origins (x @ y))
      | _ -> None)
    a b

let rec exec_stmts (c : tctx) (path : string) (body : Ir.stmt list) : unit =
  List.iteri (fun i s -> exec_stmt c (Printf.sprintf "%s[%d]" path i) s) body

and exec_stmt (c : tctx) (loc : string) (s : Ir.stmt) : unit =
  match s with
  | Ir.Comment _ -> ()
  | Ir.Let (r, e) ->
      c.regs <- SM.add r (ev c e) c.regs;
      c.orig <- SM.add r (dedup_origins (origins_of_exp c e)) c.orig
  | Ir.Load { dst; space; arr; idx } ->
      let idxv = ev c idx in
      emit c ~loc ~space ~arr ~idx:idxv ~kind:Ld ~rmw:false;
      c.regs <- SM.add dst Unknown c.regs;
      c.orig <- SM.add dst [ (space, arr, idxv, c.phase) ] c.orig
  | Ir.Vec_load { dsts; arr; base } ->
      let basev = ev c base in
      List.iteri
        (fun k dst ->
          let idxv =
            match basev with Known b -> Known (b + k) | Unknown -> Unknown
          in
          emit c ~loc ~space:Ir.Global ~arr ~idx:idxv ~kind:Ld ~rmw:false;
          c.regs <- SM.add dst Unknown c.regs;
          c.orig <- SM.add dst [ (Ir.Global, arr, idxv, c.phase) ] c.orig)
        dsts
  | Ir.Store { space; arr; idx; v } ->
      let idxv = ev c idx in
      let rmw =
        List.exists
          (fun (sp, ar, ix, ph) ->
            sp = space && ar = arr && ph = c.phase && sv_same_loc ix idxv)
          (origins_of_exp c v)
      in
      emit c ~loc ~space ~arr ~idx:idxv ~kind:St ~rmw
  | Ir.Atomic { dst; space; arr; idx; _ } -> (
      emit c ~loc ~space ~arr ~idx:(ev c idx) ~kind:At ~rmw:false;
      match dst with
      | Some d ->
          c.regs <- SM.add d Unknown c.regs;
          c.orig <- SM.remove d c.orig
      | None -> ())
  | Ir.Shfl { dst; _ } ->
      c.regs <- SM.add dst Unknown c.regs;
      c.orig <- SM.remove dst c.orig
  | Ir.Sync ->
      c.syncs <- (loc, c.access_since_sync) :: c.syncs;
      c.sync_seen <- true;
      c.access_since_sync <- false;
      c.phase <- c.phase + 1
  | Ir.If (cnd, t, e) -> (
      match ev c cnd with
      | Known 0 -> exec_stmts c (loc ^ ".else") e
      | Known _ -> exec_stmts c (loc ^ ".then") t
      | Unknown ->
          (* run both arms from the same entry state and join *)
          let regs0 = c.regs and orig0 = c.orig in
          exec_stmts c (loc ^ ".then") t;
          let regs_t = c.regs and orig_t = c.orig in
          c.regs <- regs0;
          c.orig <- orig0;
          exec_stmts c (loc ^ ".else") e;
          c.regs <- merge_regs regs_t c.regs;
          c.orig <- merge_orig orig_t c.orig)
  | Ir.For { var; init; cond; step; body } ->
      let body_loc = loc ^ ".body" in
      (* when the trip count is data-dependent, two widened passes with an
         unknown iterator expose both intra- and cross-iteration pairs *)
      let widen () =
        c.regs <- SM.add var Unknown c.regs;
        c.orig <- SM.remove var c.orig;
        exec_stmts c body_loc body;
        exec_stmts c body_loc body
      in
      c.regs <- SM.add var (ev c init) c.regs;
      c.orig <- SM.remove var c.orig;
      let rec go fuel =
        match ev c cond with
        | Known 0 -> ()
        | Known _ when fuel > 0 -> (
            exec_stmts c body_loc body;
            match ev c step with
            | Known _ as nv ->
                c.regs <- SM.add var nv c.regs;
                go (fuel - 1)
            | Unknown -> widen ())
        | _ -> widen ()
      in
      go c.cfg.loop_fuel
  | Ir.While (cnd, body) ->
      let body_loc = loc ^ ".body" in
      let rec go fuel =
        match ev c cnd with
        | Known 0 -> ()
        | Known _ when fuel > 0 ->
            exec_stmts c body_loc body;
            go (fuel - 1)
        | _ ->
            exec_stmts c body_loc body;
            exec_stmts c body_loc body
      in
      go c.cfg.loop_fuel

(* ------------------------------------------------------------------ *)
(* Static checks: divergent barriers, malformed shuffles               *)
(* ------------------------------------------------------------------ *)

let static_diags (k : Ir.kernel) : Diag.t list =
  let tainted = Analysis.level_stmts SM.empty k.Ir.k_body in
  let out = ref [] in
  let add ~loc code msg =
    out := Diag.make ~loc ~code ~severity:Diag.Error ~kernel:k.Ir.k_name msg :: !out
  in
  let level_name = function
    | Analysis.Block_uniform -> "block-uniform"
    | Analysis.Warp_uniform -> "warp-uniform"
    | Analysis.Divergent -> "thread-divergent"
  in
  let rec walk ctrl path body =
    List.iteri (fun i s -> stmt ctrl (Printf.sprintf "%s[%d]" path i) s) body
  and stmt ctrl loc = function
    | Ir.Sync ->
        if ctrl <> Analysis.Block_uniform then
          add ~loc "TSAN004"
            (Printf.sprintf
               "__syncthreads() under %s control flow: threads of one block \
                can reach different barrier instances (or skip the barrier \
                entirely), which deadlocks the block on real hardware"
               (level_name ctrl))
    | Ir.Shfl { width; _ } ->
        if width > 32 then
          add ~loc "TSAN005"
            (Printf.sprintf
               "shuffle width %d exceeds the warp: lanes cannot exchange \
                registers across warps, the exchange reads undefined data"
               width)
        else if not (Validate.valid_shfl_width width) then
          add ~loc "TSAN005"
            (Printf.sprintf "invalid shuffle width %d (must be 2/4/8/16/32)"
               width)
        else if ctrl = Analysis.Divergent then
          add ~loc "TSAN005"
            "warp shuffle under lane-divergent control flow: inactive source \
             lanes make the exchanged value undefined"
    | Ir.If (cnd, t, e) ->
        let branch_ctrl =
          Analysis.join_level ctrl (Analysis.exp_level ~tainted cnd)
        in
        walk branch_ctrl (loc ^ ".then") t;
        walk branch_ctrl (loc ^ ".else") e
    | Ir.For { var; init; cond; body; _ } ->
        let loop_ctrl =
          Analysis.join_level ctrl
            (Analysis.join_level
               (Analysis.exp_level ~tainted init)
               (Analysis.exp_level ~tainted:(SM.remove var tainted) cond))
        in
        walk loop_ctrl (loc ^ ".body") body
    | Ir.While (cnd, body) ->
        let loop_ctrl =
          Analysis.join_level ctrl (Analysis.exp_level ~tainted cnd)
        in
        walk loop_ctrl (loc ^ ".body") body
    | Ir.Let _ | Ir.Load _ | Ir.Store _ | Ir.Vec_load _ | Ir.Atomic _
    | Ir.Comment _ ->
        ()
  in
  walk Analysis.Block_uniform "body" k.Ir.k_body;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Pairwise race detection over the recorded events                    *)
(* ------------------------------------------------------------------ *)

let kind_name = function Ld -> "load" | St -> "store" | At -> "atomic"

let idx_name = function
  | Known i -> Printf.sprintf "index %d" i
  | Unknown -> "a data-dependent index"

(* same warp of the same block: ordered by warp-synchronous execution *)
let same_warp a b = a.ev_bid = b.ev_bid && warp_of a.ev_tid = warp_of b.ev_tid

(* can the two accesses be unordered at run time? *)
let concurrent a b =
  (a.ev_bid <> b.ev_bid || a.ev_tid <> b.ev_tid)
  && (not (same_warp a b))
  &&
  match a.ev_space with
  | Ir.Shared ->
      (* shared memory is per block: only same-block accesses alias *)
      a.ev_bid = b.ev_bid && a.ev_phase = b.ev_phase
  | Ir.Global ->
      (* barriers order nothing across blocks *)
      (if a.ev_bid = b.ev_bid then a.ev_phase = b.ev_phase else true)

let classify a b : (string * string) option =
  match (a.ev_kind, b.ev_kind) with
  | Ld, Ld | At, At -> None
  | St, St ->
      if a.ev_rmw || b.ev_rmw then
        Some
          ( "TSAN003",
            "lost update: both threads read-modify-write the cell without \
             atomicity, one increment is silently dropped" )
      else Some ("TSAN001", "write-write race: the surviving value is arbitrary")
  | (St, At | At, St) ->
      Some
        ( "TSAN001",
          "plain store races an atomic update of the same cell: the store \
           can overwrite concurrently accumulated values" )
  | (St, Ld | Ld, St) ->
      let st = if a.ev_kind = St then a else b in
      if st.ev_rmw then
        Some
          ( "TSAN003",
            "lost update: a non-atomic read-modify-write races a reader of \
             the same cell" )
      else
        Some
          ( "TSAN002",
            "read-write race: the load can observe the cell mid-update" )
  | (At, Ld | Ld, At) ->
      Some
        ( "TSAN002",
          "read races an atomic update of the same cell: the load can \
           observe an intermediate accumulator value" )

let space_name = function Ir.Shared -> "shared" | Ir.Global -> "global"

let race_diags (k : Ir.kernel) (events : event list) : Diag.t list =
  (* group by array: only same-array accesses alias *)
  let tbl : (Ir.space * string, event list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let key = (e.ev_space, e.ev_arr) in
      match Hashtbl.find_opt tbl key with
      | Some l -> l := e :: !l
      | None -> Hashtbl.add tbl key (ref [ e ]))
    events;
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let out = ref [] in
  let report code detail w e =
    let l1 = min w.ev_loc e.ev_loc and l2 = max w.ev_loc e.ev_loc in
    let key = Printf.sprintf "%s|%s|%s|%s|%s" code (space_name w.ev_space) w.ev_arr l1 l2 in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      let msg =
        Printf.sprintf
          "%s at %s (thread %d of block %d, barrier phase %d) and %s at %s \
           (thread %d of block %d, phase %d) may touch %s of %s array %S \
           concurrently: %s"
          (kind_name w.ev_kind) w.ev_loc w.ev_tid w.ev_bid w.ev_phase
          (kind_name e.ev_kind) e.ev_loc e.ev_tid e.ev_bid e.ev_phase
          (idx_name w.ev_idx) (space_name w.ev_space) w.ev_arr detail
      in
      out :=
        Diag.make ~loc:w.ev_loc ~code ~severity:Diag.Error ~kernel:k.Ir.k_name
          msg
        :: !out
    end
  in
  Hashtbl.iter
    (fun _ group ->
      let evs = Array.of_list !group in
      let n = Array.length evs in
      for i = 0 to n - 1 do
        let a = evs.(i) in
        if a.ev_kind <> Ld then
          for j = 0 to n - 1 do
            if j <> i then begin
              let b = evs.(j) in
              (* canonical order so each unordered pair is visited once
                 when both sides are writes *)
              if (b.ev_kind = Ld || i < j) && concurrent a b
                 && sv_may_eq a.ev_idx b.ev_idx
              then
                match classify a b with
                | Some (code, detail) -> report code detail a b
                | None -> ()
            end
          done
      done)
    tbl;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Perf lints                                                          *)
(* ------------------------------------------------------------------ *)

let lint_diags (k : Ir.kernel) (events : event list)
    (syncs : (string * bool) list) : Diag.t list =
  let out = ref [] in
  let warn ~loc code msg =
    out := Diag.make ~loc ~code ~severity:Diag.Warn ~kernel:k.Ir.k_name msg :: !out
  in
  (* TLINT001: a barrier with no memory access since the previous one
     orders nothing the previous barrier did not already order. [syncs]
     is thread (0,0)'s barrier trace, oldest first. *)
  let seen1 = Hashtbl.create 4 in
  List.iteri
    (fun i (loc, had_access) ->
      if i > 0 && (not had_access) && not (Hashtbl.mem seen1 loc) then begin
        Hashtbl.add seen1 loc ();
        warn ~loc "TLINT001"
          "redundant barrier: no shared/global access since the previous \
           __syncthreads(), the barrier orders nothing new"
      end)
    syncs;
  (* TLINT002: all producer/consumer pairs across this barrier sit in one
     warp — warp-synchronous execution (or a shuffle) already orders
     them, the block-wide barrier is avoidable (paper, Listing 4). Only
     block 0's events matter; barriers order nothing across blocks. *)
  let b0 = List.filter (fun e -> e.ev_bid = 0) events in
  List.iteri
    (fun p (loc, _) ->
      let before = List.filter (fun e -> e.ev_phase = p) b0 in
      let after = List.filter (fun e -> e.ev_phase = p + 1) b0 in
      let pairs = ref [] in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if
                a.ev_arr = b.ev_arr && a.ev_space = b.ev_space
                && (a.ev_kind <> Ld || b.ev_kind <> Ld)
                && sv_may_eq a.ev_idx b.ev_idx
              then pairs := (a, b) :: !pairs)
            after)
        before;
      if !pairs <> [] && List.for_all (fun (a, b) -> same_warp a b) !pairs
      then
        warn ~loc "TLINT002"
          "every producer/consumer dependence across this barrier is \
           intra-warp: lockstep warp execution (or a __shfl exchange) \
           already orders them, the block-wide barrier can be removed")
    syncs;
  (* TLINT003: an atomic no two distinct threads ever contend on could be
     a plain store. Requires every index to be concrete — a
     data-dependent index may collide for some input. *)
  let atomics = List.filter (fun e -> e.ev_kind = At) events in
  let by_arr : (Ir.space * string, event list ref) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun e ->
      let key = (e.ev_space, e.ev_arr) in
      match Hashtbl.find_opt by_arr key with
      | Some l -> l := e :: !l
      | None -> Hashtbl.add by_arr key (ref [ e ]))
    atomics;
  Hashtbl.iter
    (fun (space, arr) group ->
      let evs = !group in
      let all_known =
        List.for_all (fun e -> match e.ev_idx with Known _ -> true | _ -> false) evs
      in
      let contended =
        List.exists
          (fun a ->
            List.exists
              (fun b ->
                (a.ev_bid <> b.ev_bid || a.ev_tid <> b.ev_tid)
                && (match space with
                   | Ir.Shared -> a.ev_bid = b.ev_bid
                   | Ir.Global -> true)
                && sv_may_eq a.ev_idx b.ev_idx)
              evs)
          evs
      in
      if all_known && not contended then
        let locs =
          List.sort_uniq compare (List.map (fun e -> e.ev_loc) evs)
        in
        List.iter
          (fun loc ->
            warn ~loc "TLINT003"
              (Printf.sprintf
                 "atomic on %s array %S is single-writer for every location \
                  it touches: a plain store would do and is cheaper"
                 (space_name space) arr))
          locs)
    by_arr;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let dedup_diags (ds : Diag.t list) : Diag.t list =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (d : Diag.t) ->
      let key = (d.Diag.code, d.Diag.kernel, d.Diag.loc) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    ds

let check_kernel ?(cfg = default_config) ?(params = []) ?block ?grid
    (k : Ir.kernel) : Diag.t list =
  let bdim = max 1 (match block with Some b -> b | None -> cfg.model_block) in
  let gdim = max 1 (match grid with Some g -> g | None -> cfg.model_grid) in
  let statics = static_diags k in
  (* a divergent barrier desynchronises the phase counters: phase-based
     race detection is meaningless until it is fixed *)
  if List.exists (fun (d : Diag.t) -> d.Diag.code = "TSAN004") statics then
    Diag.sort (dedup_diags statics)
  else begin
    let params_map =
      List.fold_left (fun m (p, v) -> SM.add p (Known v) m) SM.empty params
    in
    let events = ref [] in
    let t00_syncs = ref [] in
    for bid = 0 to gdim - 1 do
      for tid = 0 to bdim - 1 do
        let c =
          {
            cfg;
            k_bdim = bdim;
            k_gdim = gdim;
            params = params_map;
            tid;
            bid;
            regs = SM.empty;
            orig = SM.empty;
            phase = 0;
            access_since_sync = false;
            sync_seen = false;
            syncs = [];
            events;
          }
        in
        exec_stmts c "body" k.Ir.k_body;
        if bid = 0 && tid = 0 then t00_syncs := List.rev c.syncs
      done
    done;
    let evs = !events in
    let diags =
      statics @ race_diags k evs @ lint_diags k evs !t00_syncs
    in
    Diag.sort (dedup_diags diags)
  end

(* ------------------------------------------------------------------ *)
(* Program-level driver                                                *)
(* ------------------------------------------------------------------ *)

(* evaluate a host expression at the model input size; worst-case over
   the first and last candidate of every tunable (block sizes grow with
   the candidate list, trip counts shrink — taking the max over both
   extremes captures the largest geometry the tuner can pick) *)
let eval_h ~cfg ~(tunables : (string * int list) list) ~(pick : int list -> int)
    (h : Ir.hexp) : int option =
  let bind = List.map (fun (t, cands) -> (t, pick cands)) tunables in
  match Ir.eval_hexp ~n:cfg.sample_n ~tunables:bind h with
  | v -> Some v
  | exception _ -> None

let eval_h_max ~cfg ~tunables h =
  let lo = eval_h ~cfg ~tunables ~pick:List.hd h in
  let hi =
    eval_h ~cfg ~tunables
      ~pick:(fun cands -> List.nth cands (List.length cands - 1))
      h
  in
  match (lo, hi) with
  | Some a, Some b -> Some (max a b)
  | (Some _ as v), None | None, (Some _ as v) -> v
  | None, None -> None

let check_program ?(cfg = default_config) (p : Ir.program) : Diag.t list =
  let tunables =
    List.filter (fun (_, cands) -> cands <> []) p.Ir.p_tunables
  in
  let diags =
    List.concat_map
      (fun (ln : Ir.launch) ->
        match
          List.find_opt (fun k -> k.Ir.k_name = ln.Ir.ln_kernel) p.Ir.p_kernels
        with
        | None -> []
        | Some k ->
            let block =
              match eval_h_max ~cfg ~tunables ln.Ir.ln_block with
              | Some b -> min cfg.model_block (max 1 b)
              | None -> cfg.model_block
            in
            let grid =
              match eval_h_max ~cfg ~tunables ln.Ir.ln_grid with
              | Some g -> min cfg.model_grid (max 1 g)
              | None -> cfg.model_grid
            in
            (* positional binding: the i-th scalar launch argument feeds
               the i-th kernel parameter (the compose convention: buffers
               first, then scalars) *)
            let scalars =
              List.filter_map
                (function Ir.Arg_scalar h -> Some h | Ir.Arg_buffer _ -> None)
                ln.Ir.ln_args
            in
            (* parameters are bound worst-case too: a tile of 32 keeps the
               whole tree inside one warp where every barrier is
               legitimately removable — the model must see the widest
               geometry the tuner can pick *)
            let params =
              List.filteri (fun i _ -> i < List.length scalars) k.Ir.k_params
              |> List.mapi (fun i (name, _) ->
                     match eval_h_max ~cfg ~tunables (List.nth scalars i) with
                     | Some v -> [ (name, v) ]
                     | None -> [])
              |> List.concat
            in
            check_kernel ~cfg ~params ~block ~grid k)
      p.Ir.p_launches
  in
  Diag.sort (dedup_diags diags)

exception Racy of Diag.t list

let () =
  Printexc.register_printer (function
    | Racy ds ->
        Some (Printf.sprintf "Race.Racy (%s)\n%s" (Diag.summary ds) (Diag.render ds))
    | _ -> None)

let check_program_exn ?cfg (p : Ir.program) : unit =
  let diags = check_program ?cfg p in
  if Diag.has_errors diags then raise (Racy diags)
