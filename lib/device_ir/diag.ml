(* Structured diagnostics shared by the device-IR checkers (Validate,
   Race). One record per finding; stable codes; text and JSON renderers
   so the CLI, the service and the tests all print the same thing. *)

type severity = Error | Warn

type t = {
  code : string;
  severity : severity;
  kernel : string;
  loc : string;
  message : string;
}

let make ?(loc = "") ~code ~severity ~kernel message =
  { code; severity; kernel; loc; message }

let severity_name = function Error -> "error" | Warn -> "warning"

let to_string d =
  let where = if d.loc = "" then d.kernel else d.kernel ^ " @ " ^ d.loc in
  Printf.sprintf "%s[%s] %s: %s" (severity_name d.severity) d.code where d.message

let json d =
  Obs.Json.Obj
    [
      ("code", Obs.Json.Str d.code);
      ("severity", Obs.Json.Str (severity_name d.severity));
      ("kernel", Obs.Json.Str d.kernel);
      ("loc", Obs.Json.Str d.loc);
      ("message", Obs.Json.Str d.message);
    ]

let list_json ds = Obs.Json.Arr (List.map json ds)
let to_json d = Obs.Json.to_string (json d)
let list_to_json ds = Obs.Json.to_string (list_json ds)

let render ds = String.concat "\n" (List.map to_string ds)

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warn) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let summary ds =
  let plural n what = Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s") in
  match (List.length (errors ds), List.length (warnings ds)) with
  | 0, 0 -> "clean"
  | ne, 0 -> plural ne "error"
  | 0, nw -> plural nw "warning"
  | ne, nw -> plural ne "error" ^ ", " ^ plural nw "warning"

let compare_t a b =
  let sev = function Error -> 0 | Warn -> 1 in
  match compare (sev a.severity) (sev b.severity) with
  | 0 -> (
      match compare a.code b.code with
      | 0 -> (
          match compare a.kernel b.kernel with
          | 0 -> compare a.loc b.loc
          | c -> c)
      | c -> c)
  | c -> c

let sort ds = List.stable_sort compare_t ds

(* ------------------------------------------------------------------ *)
(* Code registry                                                       *)
(* ------------------------------------------------------------------ *)

type info = {
  r_code : string;
  r_severity : severity;
  r_source : string;
  r_meaning : string;
}

(* every stable code any checker can emit, in catalogue order; the
   [tangramc codes] listing and the registry-completeness test both read
   this table *)
let registry : info list =
  let e = Error and w = Warn in
  let mk r_code r_severity r_source r_meaning =
    { r_code; r_severity; r_source; r_meaning }
  in
  [
    mk "TVAL001" e "validate" "malformed device IR (unbound name, bad shape, or ill-typed construct)";
    mk "TSAN001" e "race" "write/write race: two threads store to the same location in one barrier phase";
    mk "TSAN002" e "race" "read/write race: a load may observe a concurrent store from another thread";
    mk "TSAN003" e "race" "lost update: non-atomic read-modify-write of a contended location";
    mk "TSAN004" e "race" "barrier under thread-divergent control flow (deadlock)";
    mk "TSAN005" e "race" "out-of-warp or malformed shuffle exchange";
    mk "TLINT001" w "race" "redundant back-to-back barrier with no memory traffic between";
    mk "TLINT002" w "race" "barrier that only orders warp-private traffic (warp-synchronous by construction)";
    mk "TLINT003" w "race" "atomic on a provably single-writer location";
    mk "TSYM001" e "prove" "symbolic result term refutes equivalence with the reference reduction";
    mk "TSYM002" e "prove" "symbolic execution aborted: program outside the provable fragment";
    mk "TSYM003" e "prove" "unsynchronized cross-warp or cross-block hazard found during proof";
    mk "TSYM004" e "prove" "shuffle with invalid width or out-of-warp geometry found during proof";
    mk "TPERF010" w "access" "uncoalesced global access: strided or scattered lane addresses need multiple transactions per warp";
    mk "TPERF011" w "access" "n-way shared-memory bank conflict: the access replays once per conflicting address";
    mk "TPERF012" w "access" "non-affine index escape: data-dependent address defeats the static coalescing/bank analysis";
    mk "TFLT001" w "fleet" "device fail-stopped and was marked dead; in-flight dispatch rerouted";
    mk "TFLT002" w "fleet" "health score crossed the ejection threshold: device taken out of the serving pool";
    mk "TFLT003" w "fleet" "ejected device passed readmission probes and rejoined the serving pool";
    mk "TFLT004" w "fleet" "first attempt overran the hedge deadline: speculative re-dispatch fired";
    mk "TFLT005" w "fleet" "device marked to drain: finishing in-flight work, taking no new dispatches";
    mk "TFLT006" w "fleet" "warm spare promoted into the serving pool";
    mk "TOBS001" w "obs" "SLO burn-rate alert fired: fast and slow windows both exceed the firing threshold";
    mk "TOBS002" w "obs" "flight recorder dumped an incident bundle (alert, confirmed corruption or device ejection)";
    mk "TOBS003" w "obs" "trace ring overflowed: the exported trace is known-incomplete";
    mk "TOBS004" w "obs" "benchmark cell regressed beyond tolerance against the committed baseline";
  ]

let lookup code = List.find_opt (fun r -> r.r_code = code) registry
let registered code = lookup code <> None

let registry_json () =
  Obs.Json.Arr
    (List.map
       (fun r ->
         Obs.Json.Obj
           [
             ("code", Obs.Json.Str r.r_code);
             ("severity", Obs.Json.Str (severity_name r.r_severity));
             ("source", Obs.Json.Str r.r_source);
             ("meaning", Obs.Json.Str r.r_meaning);
           ])
       registry)

exception Failed of t list

let () =
  Printexc.register_printer (function
    | Failed ds ->
        Some
          (Printf.sprintf "Diag.Failed (%s)\n%s" (summary ds) (render ds))
    | _ -> None)

let fail_on_errors ds =
  match errors ds with [] -> () | errs -> raise (Failed errs)
