(* Structured diagnostics shared by the device-IR checkers (Validate,
   Race). One record per finding; stable codes; text and JSON renderers
   so the CLI, the service and the tests all print the same thing. *)

type severity = Error | Warn

type t = {
  code : string;
  severity : severity;
  kernel : string;
  loc : string;
  message : string;
}

let make ?(loc = "") ~code ~severity ~kernel message =
  { code; severity; kernel; loc; message }

let severity_name = function Error -> "error" | Warn -> "warning"

let to_string d =
  let where = if d.loc = "" then d.kernel else d.kernel ^ " @ " ^ d.loc in
  Printf.sprintf "%s[%s] %s: %s" (severity_name d.severity) d.code where d.message

let json d =
  Obs.Json.Obj
    [
      ("code", Obs.Json.Str d.code);
      ("severity", Obs.Json.Str (severity_name d.severity));
      ("kernel", Obs.Json.Str d.kernel);
      ("loc", Obs.Json.Str d.loc);
      ("message", Obs.Json.Str d.message);
    ]

let list_json ds = Obs.Json.Arr (List.map json ds)
let to_json d = Obs.Json.to_string (json d)
let list_to_json ds = Obs.Json.to_string (list_json ds)

let render ds = String.concat "\n" (List.map to_string ds)

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warn) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let summary ds =
  let plural n what = Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s") in
  match (List.length (errors ds), List.length (warnings ds)) with
  | 0, 0 -> "clean"
  | ne, 0 -> plural ne "error"
  | 0, nw -> plural nw "warning"
  | ne, nw -> plural ne "error" ^ ", " ^ plural nw "warning"

let compare_t a b =
  let sev = function Error -> 0 | Warn -> 1 in
  match compare (sev a.severity) (sev b.severity) with
  | 0 -> (
      match compare a.code b.code with
      | 0 -> (
          match compare a.kernel b.kernel with
          | 0 -> compare a.loc b.loc
          | c -> c)
      | c -> c)
  | c -> c

let sort ds = List.stable_sort compare_t ds

exception Failed of t list

let () =
  Printexc.register_printer (function
    | Failed ds ->
        Some
          (Printf.sprintf "Diag.Failed (%s)\n%s" (summary ds) (render ds))
    | _ -> None)

let fail_on_errors ds =
  match errors ds with [] -> () | errs -> raise (Failed errs)
