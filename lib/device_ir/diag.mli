(** Structured diagnostics for the device-IR analysis layer.

    Every checker in the pipeline (the {!Validate} well-formedness pass,
    the {!Race} barrier-phase sanitizer) reports through this one type so
    that the CLI, the service and the tests print and serialize
    diagnostics uniformly.

    Codes are stable identifiers, never reused:
    - [TVAL001] — well-formedness error from {!Validate};
    - [TSAN001..TSAN005] — race/synchronization errors from {!Race};
    - [TLINT001..TLINT003] — performance lints (warnings) from {!Race};
    - [TSYM001..TSYM004] — symbolic-equivalence refutations from
      {!Symbolic.Prove} (refuted result term, aborted symbolic execution,
      unsynchronized hazard, invalid shuffle geometry);
    - [TPERF010..TPERF012] — static memory-access performance warnings
      from {!Access} (uncoalesced global access, n-way bank conflict,
      non-affine index escape).

    The full catalogue lives in {!registry}; [tangramc codes] renders it
    and a suite test asserts every emitted code is registered. *)

type severity = Error | Warn

type t = {
  code : string;     (** stable diagnostic code, e.g. ["TSAN001"] *)
  severity : severity;
  kernel : string;   (** kernel (or program) the diagnostic is about *)
  loc : string;      (** statement path inside the kernel body, [""] if n/a *)
  message : string;
}

val make :
  ?loc:string -> code:string -> severity:severity -> kernel:string -> string -> t

val severity_name : severity -> string

(** ["error[TSAN001] reduce_block @ body[3].then[0]: ..."] *)
val to_string : t -> string

(** Structured JSON value (rendered through {!Obs.Json}). *)
val json : t -> Obs.Json.t

(** JSON array of {!json} objects. *)
val list_json : t list -> Obs.Json.t

(** One-object JSON rendering of {!json}, no trailing newline. *)
val to_json : t -> string

(** JSON array rendering of {!list_json}. *)
val list_to_json : t list -> string

(** One {!to_string} line per diagnostic. *)
val render : t list -> string

(** ["2 errors, 1 warning"] (or ["clean"] when empty). *)
val summary : t list -> string

val errors : t list -> t list
val warnings : t list -> t list
val has_errors : t list -> bool

(** Errors before warnings, then by code, kernel, location. *)
val sort : t list -> t list

(** One registry row: a stable code, the severity it is always emitted
    at, the checker that owns it, and a one-line meaning. *)
type info = {
  r_code : string;
  r_severity : severity;
  r_source : string;  (** owning checker: ["validate"], ["race"], ["prove"], ["access"] *)
  r_meaning : string;
}

(** The closed catalogue of every code any checker can emit, in
    catalogue order (TVAL, TSAN, TLINT, TSYM, TPERF). *)
val registry : info list

val lookup : string -> info option

(** [registered code] — membership in {!registry}. *)
val registered : string -> bool

(** {!registry} as a JSON array (code, severity, source, meaning). *)
val registry_json : unit -> Obs.Json.t

(** Raised by [*_exn] entry points that reject on error-severity
    diagnostics; carries the full diagnostic list. A friendly printer is
    registered with [Printexc]. *)
exception Failed of t list

(** @raise Failed when the list contains error-severity diagnostics. *)
val fail_on_errors : t list -> unit
