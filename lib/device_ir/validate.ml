(* Well-formedness checks for device-IR kernels and programs.

   The validator runs before either back end touches a program. It rejects:
   - references to undeclared arrays, parameters or registers;
   - a register used before any possible definition;
   - barriers under thread-divergent control flow (the classic CUDA
     deadlock), using the taint analysis of {!Analysis};
   - malformed shuffles (bad sub-warp width) and vector loads (bad arity);
   - host-side launches of unknown kernels, argument-count mismatches and
     references to undeclared buffers. *)

type error = { where : string; what : string }

let error_to_string { where; what } = Printf.sprintf "%s: %s" where what

exception Invalid of error list

module SS = Set.Make (String)

let valid_shfl_width w = List.mem w [ 2; 4; 8; 16; 32 ]
let valid_vec_arity a = List.mem a [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Kernel checks                                                       *)
(* ------------------------------------------------------------------ *)

let check_kernel (k : Ir.kernel) : error list =
  let errs = ref [] in
  let err what = errs := { where = k.Ir.k_name; what } :: !errs in
  let params = SS.of_list (List.map fst k.Ir.k_params) in
  let garrays = SS.of_list (List.map fst k.Ir.k_arrays) in
  let sarrays = SS.of_list (List.map (fun d -> d.Ir.sh_name) k.Ir.k_shared) in
  (match
     List.find_opt (fun (n, _) -> SS.mem n garrays) k.Ir.k_params
   with
  | Some (n, _) -> err (Printf.sprintf "name %S is both a parameter and an array" n)
  | None -> ());
  let dyn_shared = List.filter (fun d -> d.Ir.sh_size = Ir.Dynamic_size) k.Ir.k_shared in
  if List.length dyn_shared > 1 then
    err "at most one dynamically-sized shared array is allowed";
  let check_arr space arr =
    match (space : Ir.space) with
    | Ir.Global ->
        if not (SS.mem arr garrays) then
          err (Printf.sprintf "undeclared global array %S" arr)
    | Ir.Shared ->
        if not (SS.mem arr sarrays) then
          err (Printf.sprintf "undeclared shared array %S" arr)
  in
  (* [defined] tracks registers definitely defined on every path so far;
     definitions inside one branch of an If only count when both branches
     define the register. *)
  let rec check_exp ~defined (e : Ir.exp) =
    match e with
    | Ir.Int _ | Ir.Float _ | Ir.Bool _ | Ir.Special _ -> ()
    | Ir.Param p ->
        if not (SS.mem p params) then err (Printf.sprintf "undeclared parameter %S" p)
    | Ir.Reg r ->
        if not (SS.mem r defined) then
          err (Printf.sprintf "register %S used before definition" r)
    | Ir.Unop (_, a) -> check_exp ~defined a
    | Ir.Binop (_, a, b) -> check_exp ~defined a; check_exp ~defined b
    | Ir.Select (c, a, b) ->
        check_exp ~defined c; check_exp ~defined a; check_exp ~defined b
  in
  let rec check_stmts ~defined ~tainted ~ctrl (body : Ir.stmt list) : SS.t =
    List.fold_left (check_stmt ~tainted ~ctrl) defined body
  and check_stmt ~tainted ~ctrl defined (s : Ir.stmt) : SS.t =
    match s with
    | Ir.Let (r, e) -> check_exp ~defined e; SS.add r defined
    | Ir.Load { dst; space; arr; idx } ->
        check_arr space arr; check_exp ~defined idx; SS.add dst defined
    | Ir.Store { space; arr; idx; v } ->
        check_arr space arr; check_exp ~defined idx; check_exp ~defined v; defined
    | Ir.Vec_load { dsts; arr; base } ->
        check_arr Ir.Global arr;
        check_exp ~defined base;
        if not (valid_vec_arity (List.length dsts)) then
          err "vector load arity must be 2 or 4";
        List.fold_left (fun d r -> SS.add r d) defined dsts
    | Ir.Atomic { dst; space; arr; idx; v; _ } ->
        check_arr space arr;
        check_exp ~defined idx;
        check_exp ~defined v;
        (match dst with Some d -> SS.add d defined | None -> defined)
    | Ir.Shfl { dst; v; lane; width; _ } ->
        check_exp ~defined v;
        check_exp ~defined lane;
        if not (valid_shfl_width width) then
          err (Printf.sprintf "invalid shuffle width %d" width);
        if ctrl = Analysis.Divergent then
          err "warp shuffle under lane-divergent control flow";
        SS.add dst defined
    | Ir.Sync ->
        if ctrl <> Analysis.Block_uniform then
          err "__syncthreads() under thread-divergent control flow";
        defined
    | Ir.Comment _ -> defined
    | Ir.If (c, t, e) ->
        check_exp ~defined c;
        let branch_ctrl =
          Analysis.join_level ctrl (Analysis.exp_level ~tainted c)
        in
        let dt = check_stmts ~defined ~tainted ~ctrl:branch_ctrl t in
        let de = check_stmts ~defined ~tainted ~ctrl:branch_ctrl e in
        SS.inter dt de
    | Ir.For { var; init; cond; step; body } ->
        check_exp ~defined init;
        let defined' = SS.add var defined in
        check_exp ~defined:defined' cond;
        check_exp ~defined:defined' step;
        let loop_ctrl =
          Analysis.join_level ctrl
            (Analysis.join_level
               (Analysis.exp_level ~tainted init)
               (Analysis.exp_level ~tainted:(Analysis.SM.remove var tainted) cond))
        in
        (* the loop body may not execute at all: defs inside don't escape *)
        ignore (check_stmts ~defined:defined' ~tainted ~ctrl:loop_ctrl body);
        defined
    | Ir.While (c, body) ->
        check_exp ~defined c;
        let loop_ctrl = Analysis.join_level ctrl (Analysis.exp_level ~tainted c) in
        ignore (check_stmts ~defined ~tainted ~ctrl:loop_ctrl body);
        defined
  in
  (* Divergence levels are computed over the whole body once (a sound
     over-approximation of any program point), then used to judge the
     control level of conditions. *)
  let tainted = Analysis.level_stmts Analysis.SM.empty k.Ir.k_body in
  ignore (check_stmts ~defined:SS.empty ~tainted ~ctrl:Analysis.Block_uniform k.Ir.k_body);
  List.rev !errs

(* ------------------------------------------------------------------ *)
(* Program checks                                                      *)
(* ------------------------------------------------------------------ *)

let rec hexp_tunables (h : Ir.hexp) : string list =
  match h with
  | Ir.H_int _ | Ir.H_input_size -> []
  | Ir.H_tunable t -> [ t ]
  | Ir.H_add (a, b) | Ir.H_sub (a, b) | Ir.H_mul (a, b) | Ir.H_div (a, b)
  | Ir.H_ceil_div (a, b) | Ir.H_min (a, b) | Ir.H_max (a, b) ->
      hexp_tunables a @ hexp_tunables b

let check_program (p : Ir.program) : error list =
  let errs = ref [] in
  let err where what = errs := { where; what } :: !errs in
  let kernel_errs = List.concat_map check_kernel p.Ir.p_kernels in
  let buffers =
    SS.add "input" (SS.add "output" (SS.of_list (List.map (fun b -> b.Ir.buf_name) p.Ir.p_buffers)))
  in
  let tunables = SS.of_list (List.map fst p.Ir.p_tunables) in
  List.iter
    (fun (name, candidates) ->
      if candidates = [] then
        err p.Ir.p_name (Printf.sprintf "tunable %S has no candidate values" name))
    p.Ir.p_tunables;
  let check_hexp where h =
    List.iter
      (fun t ->
        if not (SS.mem t tunables) then
          err where (Printf.sprintf "undeclared tunable %S" t))
      (hexp_tunables h)
  in
  List.iter (fun b -> check_hexp ("buffer " ^ b.Ir.buf_name) b.Ir.buf_size) p.Ir.p_buffers;
  List.iteri
    (fun i (ln : Ir.launch) ->
      let where = Printf.sprintf "%s: launch #%d (%s)" p.Ir.p_name i ln.Ir.ln_kernel in
      check_hexp where ln.Ir.ln_grid;
      check_hexp where ln.Ir.ln_block;
      check_hexp where ln.Ir.ln_shared_elems;
      match List.find_opt (fun k -> k.Ir.k_name = ln.Ir.ln_kernel) p.Ir.p_kernels with
      | None -> err where "launch of unknown kernel"
      | Some k ->
          let expected = List.length k.Ir.k_arrays + List.length k.Ir.k_params in
          let got = List.length ln.Ir.ln_args in
          if expected <> got then
            err where (Printf.sprintf "kernel expects %d arguments, launch passes %d" expected got);
          let needs_dynamic =
            List.exists (fun d -> d.Ir.sh_size = Ir.Dynamic_size) k.Ir.k_shared
          in
          if (not needs_dynamic) && ln.Ir.ln_shared_elems <> Ir.H_int 0 then
            err where "dynamic shared memory passed to a kernel that declares none";
          List.iter
            (fun (a : Ir.harg) ->
              match a with
              | Ir.Arg_buffer b ->
                  if not (SS.mem b buffers) then
                    err where (Printf.sprintf "undeclared buffer %S" b)
              | Ir.Arg_scalar h -> check_hexp where h)
            ln.Ir.ln_args)
    p.Ir.p_launches;
  if not (SS.mem p.Ir.p_result buffers) then
    err p.Ir.p_name (Printf.sprintf "result buffer %S is not declared" p.Ir.p_result);
  kernel_errs @ List.rev !errs

(** Render validator errors as structured diagnostics ([TVAL001], error
    severity) so they print and serialize like the sanitizer's. *)
let to_diags (errs : error list) : Diag.t list =
  List.map
    (fun e ->
      Diag.make ~code:"TVAL001" ~severity:Diag.Error ~kernel:e.where e.what)
    errs

(** Validate and raise {!Invalid} on failure. *)
let check_program_exn (p : Ir.program) : unit =
  match check_program p with [] -> () | errs -> raise (Invalid errs)

let check_kernel_exn (k : Ir.kernel) : unit =
  match check_kernel k with [] -> () | errs -> raise (Invalid errs)
