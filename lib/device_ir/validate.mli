(** Well-formedness checks for device-IR kernels and programs.

    Rejects references to undeclared names, registers used before every
    path defines them, barriers outside block-uniform control flow,
    shuffles under lane-divergent control flow, malformed shuffles and
    vector loads, and host-side launch mistakes (unknown kernels, argument
    mismatches, undeclared buffers/tunables). *)

type error = { where : string; what : string }

val error_to_string : error -> string

exception Invalid of error list

val valid_shfl_width : int -> bool
val valid_vec_arity : int -> bool

(** Validator errors as structured diagnostics (code [TVAL001], error
    severity, kernel name as the location). *)
val to_diags : error list -> Diag.t list

(** All diagnostics for one kernel (empty = valid). *)
val check_kernel : Ir.kernel -> error list

(** All diagnostics for a program, including every kernel's. *)
val check_program : Ir.program -> error list

(** @raise Invalid when the program has diagnostics. *)
val check_program_exn : Ir.program -> unit

(** @raise Invalid when the kernel has diagnostics. *)
val check_kernel_exn : Ir.kernel -> unit
