(* Static memory-access analysis: lane-affine abstract interpretation of
   the device IR.

   The analyzer executes each kernel one warp at a time. Every value is
   either a 32-wide lane vector (the exact pointwise concretization of
   the lane-affine normal form base + s_lane*lane + s_tid*tid + s_loop*i:
   tid folds to warp_base + 1*lane, loop iterators to their concrete
   per-iteration values) or Top for anything data-dependent — memory
   loads, shuffle results, atomic return values. Address expressions in
   the paper's reduction corpus are pure lane geometry, so they stay
   exact; the affine *fit* over the lane vector recovers (base, stride)
   for classification and rendering.

   Two invariants keep the static predictions comparable with observed
   {!Gpusim.Events} counters:

   - the segment rule (128-byte transactions: distinct [idx lsr 5] among
     active lanes) and the bank rule (32 banks: worst per-bank distinct
     address count of [idx land 31]) are copied from the interpreter
     verbatim;
   - event counting mirrors the interpreter's charging points statement
     for statement, including the block-level/warp-level split for
     statements that contain a barrier.

   Divergence is exact when the branch condition is a lane vector: the
   two arms run sequentially under complementary lane masks, and
   register assignment merges per lane, which is precisely the SIMT
   reconvergence semantics. Only a Top condition forces the
   snapshot-and-join fallback (and sets the [approx] flag). *)

module SM = Analysis.SM

let warp_lanes = 32

type config = { sample_n : int; fuel : int }

let default_config = { sample_n = 4096; fuel = 1 lsl 16 }

(* ------------------------------------------------------------------ *)
(* Abstract values: exact lane vectors, or Top                         *)
(* ------------------------------------------------------------------ *)

type aval = Vec of int array | Top

let const n = Vec (Array.make warp_lanes n)

let uniform_of = function
  | Top -> None
  | Vec a ->
      let v = a.(0) in
      if Array.for_all (fun x -> x = v) a then Some v else None

let int_of_float_exact f =
  if Float.is_integer f && Float.abs f < 1073741824.0 then
    Some (int_of_float f)
  else None

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

type coalescing = Broadcast | Coalesced | Strided of int | Scattered | Non_affine

let coalescing_name = function
  | Broadcast -> "broadcast"
  | Coalesced -> "coalesced"
  | Strided k -> Printf.sprintf "strided(%d)" k
  | Scattered -> "scattered"
  | Non_affine -> "non-affine"

let class_rank = function
  | Broadcast -> 0
  | Coalesced -> 1
  | Strided _ -> 2
  | Scattered -> 3
  | Non_affine -> 4

let class_join a b =
  match (a, b) with
  | Strided x, Strided y -> Strided (if abs x >= abs y then x else y)
  | _ -> if class_rank a >= class_rank b then a else b

type akind = Ld | St | At | Vl

let kind_name = function
  | Ld -> "load"
  | St -> "store"
  | At -> "atomic"
  | Vl -> "vec-load"

(* the interpreter's 128-byte segment rule (4-byte elements) *)
let segment_of_index i = i lsr 5

let count_segments (idxs : int array) (mask : bool array) (lanes : int) : int =
  let segs = ref [] in
  for l = 0 to lanes - 1 do
    if mask.(l) then begin
      let s = segment_of_index idxs.(l) in
      if not (List.mem s !segs) then segs := s :: !segs
    end
  done;
  List.length !segs

(* the interpreter's 32-bank rule: same-address lanes broadcast, distinct
   addresses on one bank serialise *)
let bank_conflict_degree (idxs : int array) (mask : bool array) (lanes : int) : int =
  let banks = Array.make 32 [] in
  for l = 0 to lanes - 1 do
    if mask.(l) then begin
      let b = idxs.(l) land 31 in
      if not (List.mem idxs.(l) banks.(b)) then banks.(b) <- idxs.(l) :: banks.(b)
    end
  done;
  let worst = Array.fold_left (fun acc g -> max acc (List.length g)) 0 banks in
  max worst 1

let atomic_conflicts (idxs : int array) (mask : bool array) (lanes : int) :
    int * int =
  let groups = ref [] in
  for l = 0 to lanes - 1 do
    if mask.(l) then
      match List.assoc_opt idxs.(l) !groups with
      | Some r -> incr r
      | None -> groups := (idxs.(l), ref 1) :: !groups
  done;
  (List.length !groups, List.fold_left (fun acc (_, r) -> max acc !r) 0 !groups)

let active_count mask lanes =
  let n = ref 0 in
  for l = 0 to lanes - 1 do
    if mask.(l) then incr n
  done;
  !n

(* fit the lane-affine normal form over the active lanes: addresses
   [base + stride*lane] for some integers, or None when the vector is
   lane-indexed but not affine (mod/and mixes) *)
let affine_fit (idxs : int array) (mask : bool array) (lanes : int) :
    (int * int) option =
  let acc = ref [] in
  for l = lanes - 1 downto 0 do
    if mask.(l) then acc := (l, idxs.(l)) :: !acc
  done;
  match !acc with
  | [] -> Some (0, 0)
  | [ (l, v) ] -> Some (v - (0 * l), 0)
  | (l0, v0) :: (l1, v1) :: rest ->
      let dl = l1 - l0 and dv = v1 - v0 in
      if dv mod dl <> 0 then None
      else
        let s = dv / dl in
        if
          List.for_all (fun (l, v) -> v = v0 + (s * (l - l0))) rest
        then Some (v0 - (s * l0), s)
        else None

let render_form = function
  | None -> "(data-dependent)"
  | Some (b, 0) -> Printf.sprintf "%d" b
  | Some (0, 1) -> "lane"
  | Some (b, 1) -> Printf.sprintf "%d + lane" b
  | Some (0, s) -> Printf.sprintf "%d*lane" s
  | Some (b, s) -> Printf.sprintf "%d + %d*lane" b s

(* ------------------------------------------------------------------ *)
(* Sites                                                               *)
(* ------------------------------------------------------------------ *)

type site = {
  s_kernel : string;
  s_loc : string;
  s_space : Ir.space;
  s_arr : string;
  s_kind : akind;
  mutable s_ops : int;
  mutable s_trans : int;
  mutable s_serial : int;
  mutable s_worst_trans : int;
  mutable s_worst_degree : int;
  mutable s_class : coalescing;
  mutable s_non_affine : bool;
  mutable s_first_epoch : int;
  mutable s_last_epoch : int;
  mutable s_form : string;
  mutable s_lanes : int array option;
}

type site_table = {
  tbl : (string * string, site) Hashtbl.t;  (* (kernel, loc) *)
  mutable order : site list;  (* reverse insertion order *)
}

let new_site_table () = { tbl = Hashtbl.create 32; order = [] }

let sites_in_order (t : site_table) : site list = List.rev t.order

let find_site t ~kernel ~loc ~space ~arr ~kind ~epoch =
  let key = (kernel, loc) in
  match Hashtbl.find_opt t.tbl key with
  | Some s -> s
  | None ->
      let s =
        {
          s_kernel = kernel;
          s_loc = loc;
          s_space = space;
          s_arr = arr;
          s_kind = kind;
          s_ops = 0;
          s_trans = 0;
          s_serial = 0;
          s_worst_trans = 0;
          s_worst_degree = 0;
          s_class = Broadcast;
          s_non_affine = false;
          s_first_epoch = epoch;
          s_last_epoch = epoch;
          s_form = "";
          s_lanes = None;
        }
      in
      Hashtbl.add t.tbl key s;
      t.order <- s :: t.order;
      s

let describe_site (s : site) : string =
  Printf.sprintf "%s %s %s[%s] %s: %s, worst %d trans, %d-way banks"
    s.s_kernel s.s_loc
    (match s.s_space with Ir.Global -> "global" | Ir.Shared -> "shared")
    s.s_arr (kind_name s.s_kind)
    (coalescing_name s.s_class)
    s.s_worst_trans s.s_worst_degree

(* ------------------------------------------------------------------ *)
(* Event counts (mirrors Gpusim.Events charging)                       *)
(* ------------------------------------------------------------------ *)

type counts = {
  mutable c_warp_insts : float;
  mutable c_alu : float;
  mutable c_branches : float;
  mutable c_blk_branches : float;
  mutable c_divergent : float;
  mutable c_gld_ops : float;
  mutable c_gld_trans : float;
  mutable c_gst_trans : float;
  mutable c_shared_ops : float;
  mutable c_shared_serial : float;
  mutable c_shfl : float;
  mutable c_vec_ops : float;
  mutable c_syncs : float;
  mutable c_atomic_global_ops : float;
  mutable c_atomic_global_trans : float;
  mutable c_atomic_shared_ops : float;
  mutable c_atomic_shared_serial : float;
}

let zero_counts () =
  {
    c_warp_insts = 0.0;
    c_alu = 0.0;
    c_branches = 0.0;
    c_blk_branches = 0.0;
    c_divergent = 0.0;
    c_gld_ops = 0.0;
    c_gld_trans = 0.0;
    c_gst_trans = 0.0;
    c_shared_ops = 0.0;
    c_shared_serial = 0.0;
    c_shfl = 0.0;
    c_vec_ops = 0.0;
    c_syncs = 0.0;
    c_atomic_global_ops = 0.0;
    c_atomic_global_trans = 0.0;
    c_atomic_shared_ops = 0.0;
    c_atomic_shared_serial = 0.0;
  }

let add_counts (dst : counts) (src : counts) : unit =
  dst.c_warp_insts <- dst.c_warp_insts +. src.c_warp_insts;
  dst.c_alu <- dst.c_alu +. src.c_alu;
  dst.c_branches <- dst.c_branches +. src.c_branches;
  dst.c_blk_branches <- dst.c_blk_branches +. src.c_blk_branches;
  dst.c_divergent <- dst.c_divergent +. src.c_divergent;
  dst.c_gld_ops <- dst.c_gld_ops +. src.c_gld_ops;
  dst.c_gld_trans <- dst.c_gld_trans +. src.c_gld_trans;
  dst.c_gst_trans <- dst.c_gst_trans +. src.c_gst_trans;
  dst.c_shared_ops <- dst.c_shared_ops +. src.c_shared_ops;
  dst.c_shared_serial <- dst.c_shared_serial +. src.c_shared_serial;
  dst.c_shfl <- dst.c_shfl +. src.c_shfl;
  dst.c_vec_ops <- dst.c_vec_ops +. src.c_vec_ops;
  dst.c_syncs <- dst.c_syncs +. src.c_syncs;
  dst.c_atomic_global_ops <- dst.c_atomic_global_ops +. src.c_atomic_global_ops;
  dst.c_atomic_global_trans <-
    dst.c_atomic_global_trans +. src.c_atomic_global_trans;
  dst.c_atomic_shared_ops <- dst.c_atomic_shared_ops +. src.c_atomic_shared_ops;
  dst.c_atomic_shared_serial <-
    dst.c_atomic_shared_serial +. src.c_atomic_shared_serial

let scale_counts (c : counts) (f : float) : counts =
  {
    c_warp_insts = c.c_warp_insts *. f;
    c_alu = c.c_alu *. f;
    c_branches = c.c_branches *. f;
    c_blk_branches = c.c_blk_branches *. f;
    c_divergent = c.c_divergent *. f;
    c_gld_ops = c.c_gld_ops *. f;
    c_gld_trans = c.c_gld_trans *. f;
    c_gst_trans = c.c_gst_trans *. f;
    c_shared_ops = c.c_shared_ops *. f;
    c_shared_serial = c.c_shared_serial *. f;
    c_shfl = c.c_shfl *. f;
    c_vec_ops = c.c_vec_ops *. f;
    c_syncs = c.c_syncs *. f;
    c_atomic_global_ops = c.c_atomic_global_ops *. f;
    c_atomic_global_trans = c.c_atomic_global_trans *. f;
    c_atomic_shared_ops = c.c_atomic_shared_ops *. f;
    c_atomic_shared_serial = c.c_atomic_shared_serial *. f;
  }

(* ------------------------------------------------------------------ *)
(* Block context                                                       *)
(* ------------------------------------------------------------------ *)

type wstate = { mutable regs : aval SM.t }

type bctx = {
  cfg : config;
  kernel : Ir.kernel;
  bid : int;
  bdim : int;
  gdim : int;
  params : int SM.t;
  nwarps : int;
  warps : wstate array;
  mutable epoch : int;
  mutable epochs : counts array list;  (* completed epochs, newest first *)
  mutable cur : counts array;  (* per-warp counts of the current epoch *)
  tot : counts;
  heat : (string * int * Ir.scope, float ref) Hashtbl.t;
  sites : site_table;
  mutable fuel : int;
  mutable approx : bool;
}

let warp_lane_count (c : bctx) (w : int) : int =
  min warp_lanes (c.bdim - (w * warp_lanes))

(* ------------------------------------------------------------------ *)
(* Expression evaluation (per warp)                                    *)
(* ------------------------------------------------------------------ *)

let lift1 f = function Top -> Top | Vec a -> Vec (Array.map f a)

let rec ev (c : bctx) (w : int) (e : Ir.exp) : aval =
  let st = c.warps.(w) in
  match e with
  | Ir.Int n -> const n
  | Ir.Float f -> (
      match int_of_float_exact f with Some n -> const n | None -> Top)
  | Ir.Bool b -> const (if b then 1 else 0)
  | Ir.Reg r -> ( match SM.find_opt r st.regs with Some v -> v | None -> Top)
  | Ir.Param p -> (
      match SM.find_opt p c.params with Some v -> const v | None -> Top)
  | Ir.Special s -> (
      let wbase = w * warp_lanes in
      match s with
      | Ir.Thread_idx -> Vec (Array.init warp_lanes (fun l -> wbase + l))
      | Ir.Block_idx -> const c.bid
      | Ir.Block_dim -> const c.bdim
      | Ir.Grid_dim -> const c.gdim
      | Ir.Warp_size -> const warp_lanes
      | Ir.Lane_id -> Vec (Array.init warp_lanes (fun l -> l))
      | Ir.Warp_id -> const w)
  | Ir.Unop (op, a) -> (
      match op with
      | Ir.Neg -> lift1 (fun v -> -v) (ev c w a)
      | Ir.Bnot -> lift1 lnot (ev c w a)
      | Ir.Lnot -> lift1 (fun v -> if v = 0 then 1 else 0) (ev c w a))
  | Ir.Binop (op, a, b) -> ev_binop op (ev c w a) (ev c w b)
  | Ir.Select (cnd, a, b) -> (
      match ev c w cnd with
      | Vec cv -> (
          match uniform_of (Vec cv) with
          | Some 0 -> ev c w b
          | Some _ -> ev c w a
          | None -> (
              match (ev c w a, ev c w b) with
              | Vec av, Vec bv ->
                  Vec
                    (Array.init warp_lanes (fun l ->
                         if cv.(l) <> 0 then av.(l) else bv.(l)))
              | _ -> Top))
      | Top -> (
          match (ev c w a, ev c w b) with
          | Vec av, Vec bv when av = bv -> Vec av
          | _ -> Top))

and ev_binop (op : Ir.binop) (va : aval) (vb : aval) : aval =
  let all_zero = function Vec a -> Array.for_all (fun x -> x = 0) a | Top -> false in
  let all_nonzero = function
    | Vec a -> Array.for_all (fun x -> x <> 0) a
    | Top -> false
  in
  match (op, va, vb) with
  (* short-circuits that survive one Top side *)
  | Ir.Land, x, _ when all_zero x -> const 0
  | Ir.Land, _, x when all_zero x -> const 0
  | Ir.Lor, x, _ when all_nonzero x -> const 1
  | Ir.Lor, _, x when all_nonzero x -> const 1
  | Ir.Mul, x, _ when all_zero x -> const 0
  | Ir.Mul, _, x when all_zero x -> const 0
  | _, Top, _ | _, _, Top -> Top
  | op, Vec a, Vec b ->
      let bool_ p = if p then 1 else 0 in
      let f =
        match op with
        | Ir.Add -> fun x y -> Some (x + y)
        | Ir.Sub -> fun x y -> Some (x - y)
        | Ir.Mul -> fun x y -> Some (x * y)
        | Ir.Div -> fun x y -> if y = 0 then None else Some (x / y)
        | Ir.Rem -> fun x y -> if y = 0 then None else Some (x mod y)
        | Ir.Min -> fun x y -> Some (min x y)
        | Ir.Max -> fun x y -> Some (max x y)
        | Ir.And -> fun x y -> Some (x land y)
        | Ir.Or -> fun x y -> Some (x lor y)
        | Ir.Xor -> fun x y -> Some (x lxor y)
        | Ir.Shl -> fun x y -> Some (x lsl y)
        | Ir.Shr -> fun x y -> Some (x asr y)
        | Ir.Eq -> fun x y -> Some (bool_ (x = y))
        | Ir.Ne -> fun x y -> Some (bool_ (x <> y))
        | Ir.Lt -> fun x y -> Some (bool_ (x < y))
        | Ir.Le -> fun x y -> Some (bool_ (x <= y))
        | Ir.Gt -> fun x y -> Some (bool_ (x > y))
        | Ir.Ge -> fun x y -> Some (bool_ (x >= y))
        | Ir.Land -> fun x y -> Some (bool_ (x <> 0 && y <> 0))
        | Ir.Lor -> fun x y -> Some (bool_ (x <> 0 || y <> 0))
      in
      let out = Array.make warp_lanes 0 in
      let ok = ref true in
      for l = 0 to warp_lanes - 1 do
        match f a.(l) b.(l) with
        | Some v -> out.(l) <- v
        | None -> ok := false
      done;
      if !ok then Vec out else Top

(* assignment under a lane mask: per-lane merge with the previous value
   (exact SIMT reconvergence for concrete vectors) *)
let assign (c : bctx) (w : int) (mask : bool array) (lanes : int) (r : string)
    (v : aval) : unit =
  let st = c.warps.(w) in
  let full = active_count mask lanes = lanes in
  let nv =
    if full then v
    else
      match (SM.find_opt r st.regs, v) with
      | (None | Some Top), Vec _ -> (
          match SM.find_opt r st.regs with
          | None -> v  (* unmasked lanes only ever read it under this mask *)
          | Some _ -> Top)
      | Some (Vec o), Vec n ->
          Vec
            (Array.init warp_lanes (fun l -> if mask.(l) then n.(l) else o.(l)))
      | _, Top -> Top
  in
  st.regs <- SM.add r nv st.regs

(* ------------------------------------------------------------------ *)
(* Access recording                                                    *)
(* ------------------------------------------------------------------ *)

(* returns (transactions, conflict degree) so the caller can charge the
   interpreter-identical event counts *)
let record (c : bctx) (w : int) ~loc ~space ~arr ~kind ~(idx : aval)
    ~(mask : bool array) ~(lanes : int) ~(width : int) : int * int =
  let s =
    find_site c.sites ~kernel:c.kernel.Ir.k_name ~loc ~space ~arr ~kind
      ~epoch:c.epoch
  in
  let n_active = active_count mask lanes in
  let trans, degree, fit, lanes_out =
    match idx with
    | Top ->
        c.approx <- true;
        s.s_non_affine <- true;
        (* worst case: every lane its own segment / its own address on a
           shared bank *)
        (n_active, max 1 (min n_active 32), None, None)
    | Vec a ->
        if width = 1 then
          let trans =
            match space with
            | Ir.Global -> count_segments a mask lanes
            | Ir.Shared -> 0
          in
          let degree =
            match space with
            | Ir.Shared -> bank_conflict_degree a mask lanes
            | Ir.Global -> 1
          in
          (trans, degree, affine_fit a mask lanes, Some (Array.copy a))
        else begin
          (* vectorized load: each lane touches [base .. base+width-1] *)
          let segs = ref [] in
          for l = 0 to lanes - 1 do
            if mask.(l) then
              for j = 0 to width - 1 do
                let sg = segment_of_index (a.(l) + j) in
                if not (List.mem sg !segs) then segs := sg :: !segs
              done
          done;
          (List.length !segs, 1, affine_fit a mask lanes, Some (Array.copy a))
        end
  in
  let cls =
    match idx with
    | Top -> Non_affine
    | Vec _ -> (
        match fit with
        | Some (_, 0) -> Broadcast
        | Some (_, s) when abs s = 1 -> Coalesced
        | Some (_, s) -> Strided s
        | None -> Scattered)
  in
  s.s_ops <- s.s_ops + 1;
  s.s_trans <- s.s_trans + trans;
  s.s_serial <- s.s_serial + degree;
  s.s_worst_trans <- max s.s_worst_trans trans;
  s.s_worst_degree <- max s.s_worst_degree degree;
  s.s_class <- class_join s.s_class cls;
  s.s_first_epoch <- min s.s_first_epoch c.epoch;
  s.s_last_epoch <- max s.s_last_epoch c.epoch;
  if s.s_form = "" then
    s.s_form <- (match idx with Top -> "(data-dependent)" | Vec _ -> render_form fit);
  (if s.s_lanes = None && c.bid >= 0 && w = 0 then
     match lanes_out with
     | Some a -> s.s_lanes <- Some (Array.sub a 0 lanes)
     | None -> ());
  (trans, degree)

(* ------------------------------------------------------------------ *)
(* Statement execution                                                 *)
(* ------------------------------------------------------------------ *)

let rec has_sync (s : Ir.stmt) : bool =
  match s with
  | Ir.Sync -> true
  | Ir.If (_, t, e) -> List.exists has_sync t || List.exists has_sync e
  | Ir.For { body; _ } | Ir.While (_, body) -> List.exists has_sync body
  | Ir.Let _ | Ir.Load _ | Ir.Store _ | Ir.Vec_load _ | Ir.Atomic _ | Ir.Shfl _
  | Ir.Comment _ ->
      false

let full_mask = Array.make warp_lanes true

(* charge an event to both the current-epoch per-warp record and the
   block totals (the interpreter's warp-level charging point) *)
let chg (c : bctx) (w : int) (f : counts -> unit) : unit =
  f c.cur.(w);
  f c.tot

let barrier (c : bctx) : unit =
  c.epochs <- c.cur :: c.epochs;
  c.cur <- Array.init c.nwarps (fun _ -> zero_counts ());
  c.tot.c_syncs <- c.tot.c_syncs +. float_of_int c.nwarps;
  c.tot.c_warp_insts <- c.tot.c_warp_insts +. float_of_int c.nwarps;
  c.epoch <- c.epoch + 1

let rec exec_warp (c : bctx) (w : int) (mask : bool array) (loc : string)
    (s : Ir.stmt) : unit =
  let lanes = warp_lane_count c w in
  match s with
  | Ir.Comment _ -> ()
  | Ir.Let (r, e) ->
      assign c w mask lanes r (ev c w e);
      chg c w (fun k ->
          k.c_warp_insts <- k.c_warp_insts +. 1.0;
          k.c_alu <- k.c_alu +. 1.0)
  | Ir.Load { dst; space; arr; idx } -> (
      let idxv = ev c w idx in
      let trans, degree =
        record c w ~loc ~space ~arr ~kind:Ld ~idx:idxv ~mask ~lanes ~width:1
      in
      assign c w mask lanes dst Top;
      match space with
      | Ir.Global ->
          chg c w (fun k ->
              k.c_warp_insts <- k.c_warp_insts +. 1.0;
              k.c_gld_ops <- k.c_gld_ops +. 1.0;
              k.c_gld_trans <- k.c_gld_trans +. float_of_int trans)
      | Ir.Shared ->
          chg c w (fun k ->
              k.c_warp_insts <- k.c_warp_insts +. 1.0;
              k.c_shared_ops <- k.c_shared_ops +. 1.0;
              k.c_shared_serial <- k.c_shared_serial +. float_of_int degree))
  | Ir.Vec_load { dsts; arr; base } ->
      let width = List.length dsts in
      let basev = ev c w base in
      let trans, _ =
        record c w ~loc ~space:Ir.Global ~arr ~kind:Vl ~idx:basev ~mask ~lanes
          ~width
      in
      List.iter (fun d -> assign c w mask lanes d Top) dsts;
      chg c w (fun k ->
          k.c_warp_insts <- k.c_warp_insts +. 1.0;
          k.c_vec_ops <- k.c_vec_ops +. 1.0;
          k.c_gld_trans <- k.c_gld_trans +. float_of_int trans)
  | Ir.Store { space; arr; idx; v } -> (
      let idxv = ev c w idx in
      ignore (ev c w v);
      let trans, degree =
        record c w ~loc ~space ~arr ~kind:St ~idx:idxv ~mask ~lanes ~width:1
      in
      match space with
      | Ir.Global ->
          chg c w (fun k ->
              k.c_warp_insts <- k.c_warp_insts +. 1.0;
              k.c_gst_trans <- k.c_gst_trans +. float_of_int trans)
      | Ir.Shared ->
          chg c w (fun k ->
              k.c_warp_insts <- k.c_warp_insts +. 1.0;
              k.c_shared_ops <- k.c_shared_ops +. 1.0;
              k.c_shared_serial <- k.c_shared_serial +. float_of_int degree))
  | Ir.Atomic { dst; space; arr; idx; scope; _ } -> (
      let idxv = ev c w idx in
      ignore (record c w ~loc ~space ~arr ~kind:At ~idx:idxv ~mask ~lanes ~width:1);
      (match dst with Some d -> assign c w mask lanes d Top | None -> ());
      let n_active = active_count mask lanes in
      if n_active > 0 then
        let distinct, worst =
          match idxv with
          | Vec a -> atomic_conflicts a mask lanes
          | Top -> (n_active, n_active)  (* worst both ways *)
        in
        match space with
        | Ir.Shared ->
            chg c w (fun k ->
                k.c_warp_insts <- k.c_warp_insts +. 1.0;
                k.c_atomic_shared_ops <-
                  k.c_atomic_shared_ops +. float_of_int n_active;
                k.c_atomic_shared_serial <-
                  k.c_atomic_shared_serial +. float_of_int worst)
        | Ir.Global ->
            chg c w (fun k ->
                k.c_warp_insts <- k.c_warp_insts +. 1.0;
                k.c_atomic_global_ops <-
                  k.c_atomic_global_ops +. float_of_int n_active;
                k.c_atomic_global_trans <-
                  k.c_atomic_global_trans +. float_of_int distinct);
            (match idxv with
            | Vec a ->
                for l = 0 to lanes - 1 do
                  if mask.(l) then begin
                    let key = (arr, a.(l), scope) in
                    match Hashtbl.find_opt c.heat key with
                    | Some r -> r := !r +. 1.0
                    | None -> Hashtbl.add c.heat key (ref 1.0)
                  end
                done
            | Top -> c.approx <- true))
  | Ir.Shfl { dst; _ } ->
      assign c w mask lanes dst Top;
      chg c w (fun k ->
          k.c_warp_insts <- k.c_warp_insts +. 1.0;
          k.c_shfl <- k.c_shfl +. 1.0)
  | Ir.Sync ->
      (* only reachable through divergent control, which the race
         sanitizer reports; treat as a plain barrier so the epoch count
         stays sane *)
      c.approx <- true
  | Ir.If (cnd, t, e) -> (
      chg c w (fun k ->
          k.c_warp_insts <- k.c_warp_insts +. 1.0;
          k.c_branches <- k.c_branches +. 1.0);
      match ev c w cnd with
      | Vec cv ->
          let tmask = Array.make warp_lanes false in
          let emask = Array.make warp_lanes false in
          let n_t = ref 0 and n_e = ref 0 in
          for l = 0 to lanes - 1 do
            if mask.(l) then
              if cv.(l) <> 0 then begin
                tmask.(l) <- true;
                incr n_t
              end
              else begin
                emask.(l) <- true;
                incr n_e
              end
          done;
          if !n_t > 0 && !n_e > 0 then
            chg c w (fun k -> k.c_divergent <- k.c_divergent +. 1.0);
          if !n_t > 0 then exec_warp_stmts c w tmask (loc ^ ".then") t;
          if !n_e > 0 then exec_warp_stmts c w emask (loc ^ ".else") e
      | Top ->
          (* data-dependent branch: run both arms from the same entry
             state and join register-wise *)
          c.approx <- true;
          chg c w (fun k -> k.c_divergent <- k.c_divergent +. 1.0);
          let st = c.warps.(w) in
          let regs0 = st.regs in
          exec_warp_stmts c w mask (loc ^ ".then") t;
          let regs_t = st.regs in
          st.regs <- regs0;
          exec_warp_stmts c w mask (loc ^ ".else") e;
          st.regs <-
            SM.merge
              (fun _ a b ->
                match (a, b) with
                | Some (Vec x), Some (Vec y) when x = y -> Some (Vec x)
                | Some _, Some _ -> Some Top
                | _ -> Some Top)
              regs_t st.regs)
  | Ir.For { var; init; cond; step; body } ->
      assign c w mask lanes var (ev c w init);
      chg c w (fun k ->
          k.c_warp_insts <- k.c_warp_insts +. 1.0;
          k.c_alu <- k.c_alu +. 1.0);
      let live = Array.copy mask in
      let widen () =
        c.approx <- true;
        assign c w live lanes var Top;
        exec_warp_stmts c w live (loc ^ ".body") body;
        exec_warp_stmts c w live (loc ^ ".body") body
      in
      let rec go () =
        chg c w (fun k -> k.c_branches <- k.c_branches +. 1.0);
        match ev c w cond with
        | Top -> widen ()
        | Vec cv ->
            let n_live = ref 0 in
            for l = 0 to lanes - 1 do
              if live.(l) then
                if cv.(l) <> 0 then incr n_live else live.(l) <- false
            done;
            if !n_live > 0 then
              if c.fuel <= 0 then widen ()
              else begin
                c.fuel <- c.fuel - 1;
                exec_warp_stmts c w live (loc ^ ".body") body;
                assign c w live lanes var (ev c w step);
                chg c w (fun k ->
                    k.c_warp_insts <- k.c_warp_insts +. 1.0;
                    k.c_alu <- k.c_alu +. 1.0);
                go ()
              end
      in
      go ()
  | Ir.While (cnd, body) ->
      let live = Array.copy mask in
      let widen () =
        c.approx <- true;
        exec_warp_stmts c w live (loc ^ ".body") body;
        exec_warp_stmts c w live (loc ^ ".body") body
      in
      let rec go () =
        chg c w (fun k -> k.c_branches <- k.c_branches +. 1.0);
        match ev c w cnd with
        | Top -> widen ()
        | Vec cv ->
            let n_live = ref 0 in
            for l = 0 to lanes - 1 do
              if live.(l) then
                if cv.(l) <> 0 then incr n_live else live.(l) <- false
            done;
            if !n_live > 0 then
              if c.fuel <= 0 then widen ()
              else begin
                c.fuel <- c.fuel - 1;
                exec_warp_stmts c w live (loc ^ ".body") body;
                go ()
              end
      in
      go ()

and exec_warp_stmts (c : bctx) (w : int) (mask : bool array) (path : string)
    (body : Ir.stmt list) : unit =
  List.iteri
    (fun i s -> exec_warp c w mask (Printf.sprintf "%s[%d]" path i) s)
    body

(* a block-uniform value: the same constant in every lane of every warp *)
let uniform_across (c : bctx) (e : Ir.exp) : int option =
  let rec go w acc =
    if w >= c.nwarps then acc
    else
      match (uniform_of (ev c w e), acc) with
      | Some v, None -> go (w + 1) (Some v)
      | Some v, Some u when v = u -> go (w + 1) acc
      | _ -> None
  in
  go 0 None

(* block-level execution: statements containing a barrier follow the
   interpreter's uniform-control path (and its sparser event counting) *)
let rec exec_block_stmt (c : bctx) (loc : string) (s : Ir.stmt) : unit =
  if not (has_sync s) then
    for w = 0 to c.nwarps - 1 do
      exec_warp c w full_mask loc s
    done
  else
    match s with
    | Ir.Sync -> barrier c
    | Ir.If (cnd, t, e) -> (
        c.tot.c_blk_branches <- c.tot.c_blk_branches +. float_of_int c.nwarps;
        match uniform_across c cnd with
        | Some v ->
            if v <> 0 then exec_block_stmts c (loc ^ ".then") t
            else exec_block_stmts c (loc ^ ".else") e
        | None ->
            (* non-uniform barrier guard: the sanitizer owns this error;
               analyze the then-branch so downstream sites still exist *)
            c.approx <- true;
            exec_block_stmts c (loc ^ ".then") t)
    | Ir.For { var; init; cond; step; body } ->
        for w = 0 to c.nwarps - 1 do
          assign c w full_mask (warp_lane_count c w) var (ev c w init)
        done;
        let rec go () =
          match uniform_across c cond with
          | Some v when v <> 0 ->
              if c.fuel <= 0 then c.approx <- true
              else begin
                c.fuel <- c.fuel - 1;
                exec_block_stmts c (loc ^ ".body") body;
                for w = 0 to c.nwarps - 1 do
                  assign c w full_mask (warp_lane_count c w) var (ev c w step)
                done;
                c.tot.c_blk_branches <-
                  c.tot.c_blk_branches +. float_of_int c.nwarps;
                go ()
              end
          | Some _ -> ()
          | None ->
              c.approx <- true;
              exec_block_stmts c (loc ^ ".body") body
        in
        go ()
    | Ir.While (cnd, body) ->
        let rec go () =
          match uniform_across c cnd with
          | Some v when v <> 0 ->
              if c.fuel <= 0 then c.approx <- true
              else begin
                c.fuel <- c.fuel - 1;
                exec_block_stmts c (loc ^ ".body") body;
                go ()
              end
          | Some _ -> ()
          | None ->
              c.approx <- true;
              exec_block_stmts c (loc ^ ".body") body
        in
        go ()
    | Ir.Let _ | Ir.Load _ | Ir.Store _ | Ir.Vec_load _ | Ir.Atomic _
    | Ir.Shfl _ | Ir.Comment _ ->
        assert false

and exec_block_stmts (c : bctx) (path : string) (body : Ir.stmt list) : unit =
  List.iteri
    (fun i s -> exec_block_stmt c (Printf.sprintf "%s[%d]" path i) s)
    body

(* ------------------------------------------------------------------ *)
(* Block / launch / program drivers                                    *)
(* ------------------------------------------------------------------ *)

type block_profile = {
  bp_bid : int;
  bp_warps : int;
  bp_epochs : counts array list;
  bp_tot : counts;
  bp_heat : ((string * int * Ir.scope) * float) list;
}

let analyze_block ~(cfg : config) ~(sites : site_table) ~(params : int SM.t)
    ~(bdim : int) ~(gdim : int) ~(bid : int) (k : Ir.kernel) : block_profile * bool =
  let nwarps = (bdim + warp_lanes - 1) / warp_lanes in
  let c =
    {
      cfg;
      kernel = k;
      bid;
      bdim;
      gdim;
      params;
      nwarps;
      warps = Array.init nwarps (fun _ -> { regs = SM.empty });
      epoch = 0;
      epochs = [];
      cur = Array.init nwarps (fun _ -> zero_counts ());
      tot = zero_counts ();
      heat = Hashtbl.create 8;
      sites;
      fuel = cfg.fuel;
      approx = false;
    }
  in
  exec_block_stmts c "body" k.Ir.k_body;
  c.epochs <- c.cur :: c.epochs;
  let heat = Hashtbl.fold (fun key r acc -> (key, !r) :: acc) c.heat [] in
  ( {
      bp_bid = bid;
      bp_warps = nwarps;
      bp_epochs = List.rev c.epochs;
      bp_tot = c.tot;
      bp_heat = List.sort compare heat;
    },
    c.approx )

type launch_pred = {
  lp_kernel : string;
  lp_grid : int;
  lp_block : int;
  lp_shared_bytes : int;
  lp_first : block_profile;
  lp_last : block_profile option;
  lp_totals : counts;
  lp_max_heat : float;
  lp_max_heat_scoped : float;
}

type analysis = {
  an_program : string;
  an_n : int;
  an_tunables : (string * int) list;
  an_sites : site list;
  an_launches : launch_pred list;
  an_diags : Diag.t list;
  an_approx : bool;
}

let site_diags (sites : site list) : Diag.t list =
  let out = ref [] in
  let warn s code msg =
    out :=
      Diag.make ~loc:s.s_loc ~code ~severity:Diag.Warn ~kernel:s.s_kernel msg
      :: !out
  in
  List.iter
    (fun s ->
      if s.s_non_affine then
        warn s "TPERF012"
          (Printf.sprintf
             "data-dependent index on %s array %S (%s): the address escapes \
              the lane-affine analysis, coalescing and bank behaviour cannot \
              be proven (worst case assumed)"
             (match s.s_space with Ir.Global -> "global" | Ir.Shared -> "shared")
             s.s_arr (kind_name s.s_kind))
      else begin
        (if
           s.s_space = Ir.Global
           && (s.s_kind = Ld || s.s_kind = St || s.s_kind = Vl)
           && s.s_worst_trans >= 2
           && class_rank s.s_class >= class_rank (Strided 0)
         then
           warn s "TPERF010"
             (Printf.sprintf
                "uncoalesced global %s of %S: %s lane addresses (%s) need up \
                 to %d memory transactions per warp access where a coalesced \
                 access needs 1"
                (kind_name s.s_kind) s.s_arr
                (coalescing_name s.s_class)
                s.s_form s.s_worst_trans));
        if s.s_space = Ir.Shared && s.s_worst_degree >= 2 then
          warn s "TPERF011"
            (Printf.sprintf
               "%d-way shared-memory bank conflict on %S (%s lane addresses, \
                %s): the access replays %d times in the 32-bank model"
               s.s_worst_degree s.s_arr
               (coalescing_name s.s_class)
               s.s_form s.s_worst_degree)
      end)
    sites;
  List.rev !out

let default_tunables (p : Ir.program) : (string * int) list =
  List.filter_map
    (fun (t, cands) -> match cands with v :: _ -> Some (t, v) | [] -> None)
    p.Ir.p_tunables

let analyze ?(cfg = default_config) ?n ?tunables (p : Ir.program) : analysis =
  let n = match n with Some v -> max 1 v | None -> cfg.sample_n in
  let tunables =
    match tunables with Some t -> t | None -> default_tunables p
  in
  let eval h = Ir.eval_hexp ~n ~tunables h in
  let sites = new_site_table () in
  let approx = ref false in
  let launches =
    List.filter_map
      (fun (ln : Ir.launch) ->
        match
          List.find_opt (fun k -> k.Ir.k_name = ln.Ir.ln_kernel) p.Ir.p_kernels
        with
        | None -> None
        | Some k -> (
            match (eval ln.Ir.ln_grid, eval ln.Ir.ln_block, eval ln.Ir.ln_shared_elems)
            with
            | exception _ ->
                approx := true;
                None
            | grid, block, shared_elems ->
                let grid = max 1 grid in
                let block = max 1 (min block 1024) in
                let scalars =
                  List.filter_map
                    (function
                      | Ir.Arg_scalar h -> Some h | Ir.Arg_buffer _ -> None)
                    ln.Ir.ln_args
                in
                let params =
                  List.fold_left
                    (fun (m, i) (name, _) ->
                      match List.nth_opt scalars i with
                      | Some h -> (
                          match eval h with
                          | v -> (SM.add name v m, i + 1)
                          | exception _ -> (m, i + 1))
                      | None -> (m, i + 1))
                    (SM.empty, 0) k.Ir.k_params
                  |> fst
                in
                let shared_bytes =
                  4
                  * List.fold_left
                      (fun acc (d : Ir.shared_decl) ->
                        acc
                        + (match d.Ir.sh_size with
                          | Ir.Static_size s -> s
                          | Ir.Dynamic_size -> max 0 shared_elems))
                      0 k.Ir.k_shared
                in
                let first, a1 =
                  analyze_block ~cfg ~sites ~params ~bdim:block ~gdim:grid
                    ~bid:0 k
                in
                let last, a2 =
                  if grid > 1 then
                    let bp, a =
                      analyze_block ~cfg ~sites ~params ~bdim:block ~gdim:grid
                        ~bid:(grid - 1) k
                    in
                    (Some bp, a)
                  else (None, false)
                in
                if a1 || a2 then approx := true;
                let totals =
                  match last with
                  | None -> scale_counts first.bp_tot 1.0
                  | Some l ->
                      let t = scale_counts first.bp_tot (float_of_int (grid - 1)) in
                      add_counts t l.bp_tot;
                      t
                in
                (* per-address heat over the whole grid: middle blocks
                   behave like block 0. An address the last block ALSO
                   heats is block-invariant (every block piles onto it:
                   scale block 0's contribution by grid-1); an address
                   only block 0 heats is per-block (partial[bid]-style:
                   every block heats its own copy, so the per-address
                   magnitude stays block 0's) *)
                let heat_tbl = Hashtbl.create 8 in
                let bump key v =
                  match Hashtbl.find_opt heat_tbl key with
                  | Some r -> r := !r +. v
                  | None -> Hashtbl.add heat_tbl key (ref v)
                in
                (match last with
                | None -> List.iter (fun (key, v) -> bump key v) first.bp_heat
                | Some l ->
                    List.iter
                      (fun (key, v) ->
                        if List.mem_assoc key l.bp_heat then
                          bump key (v *. float_of_int (grid - 1))
                        else bump key v)
                      first.bp_heat;
                    List.iter (fun (key, v) -> bump key v) l.bp_heat);
                let max_heat, max_heat_scoped =
                  Hashtbl.fold
                    (fun (_, _, scope) r (m, ms) ->
                      ( Float.max m !r,
                        if scope = Ir.Scope_block then ms else Float.max ms !r ))
                    heat_tbl (0.0, 0.0)
                in
                Some
                  {
                    lp_kernel = k.Ir.k_name;
                    lp_grid = grid;
                    lp_block = block;
                    lp_shared_bytes = shared_bytes;
                    lp_first = first;
                    lp_last = last;
                    lp_totals = totals;
                    lp_max_heat = max_heat;
                    lp_max_heat_scoped = max_heat_scoped;
                  }))
      p.Ir.p_launches
  in
  let site_list = sites_in_order sites in
  {
    an_program = p.Ir.p_name;
    an_n = n;
    an_tunables = tunables;
    an_sites = site_list;
    an_launches = launches;
    an_diags = Diag.sort (site_diags site_list);
    an_approx = !approx;
  }

let dedup_diags (ds : Diag.t list) : Diag.t list =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (d : Diag.t) ->
      let key = (d.Diag.code, d.Diag.kernel, d.Diag.loc) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    ds

let check_program ?(cfg = default_config) (p : Ir.program) : Diag.t list =
  let pick f =
    List.filter_map
      (fun (t, cands) -> match cands with [] -> None | l -> Some (t, f l))
      p.Ir.p_tunables
  in
  let lo = pick List.hd in
  let hi = pick (fun l -> List.nth l (List.length l - 1)) in
  let run tunables =
    match analyze ~cfg ~n:cfg.sample_n ~tunables p with
    | a -> a.an_diags
    | exception _ -> []
  in
  let diags = run lo @ if hi = lo then [] else run hi in
  Diag.sort (dedup_diags diags)
