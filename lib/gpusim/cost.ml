(* Analytic cost model: launch events -> wall-clock time.

   The model combines four terms per kernel launch and takes their maximum
   (the kernel is bound by its scarcest resource), plus a fixed launch
   overhead:

   - {b critical path}: the per-block pipelined cycle count measured by the
     interpreter, multiplied by the number of occupancy waves the grid
     needs. This term dominates small grids (few blocks, latency-bound) and
     contention-heavy kernels (Kepler shared-atomic lock loops inflate the
     per-block path);
   - {b issue throughput}: total warp instructions over the device-wide
     issue bandwidth actually reachable given how many SMs have work;
   - {b DRAM}: transaction bytes over achieved bandwidth. Achieved
     bandwidth is peak multiplied by a stream-efficiency factor chosen by
     the kernel's load style (scalar / 128-bit vectorized / L2-staged),
     reproducing the paper's observation that CUB's vector loads win for
     large arrays (§IV-C.1) while Kokkos's staged pipeline is
     compute-bound rather than DRAM-bound (§IV-C.2);
   - {b atomic serialisation}: the hottest global-atomic address times the
     per-op L2 serialisation cost.

   Occupancy (resident blocks per SM) follows the usual limiting-resource
   rule over threads, block slots, warps and shared memory. *)

type breakdown = {
  launch_us : float;
  critical_path_us : float;
  issue_us : float;
  dram_us : float;
  atomic_us : float;
}

type t = {
  time_us : float;
  bound : string;  (** which term wins: "launch" | "cp" | "issue" | "dram" | "atomic" *)
  detail : breakdown;
  occupancy_blocks_per_sm : int;
  waves : int;
}

(** How the kernel streams its input, for the bandwidth-efficiency factor. *)
type stream_style = Scalar_loads | Vector_loads | Staged_loads

let occupancy (arch : Arch.t) ~(block : int) ~(shared_bytes : int) : int =
  let by_threads = arch.Arch.max_threads_per_sm / max block 1 in
  let by_blocks = arch.Arch.max_blocks_per_sm in
  let warps_per_block = (block + arch.Arch.warp_size - 1) / arch.Arch.warp_size in
  let by_warps = arch.Arch.max_resident_warps_per_sm / max warps_per_block 1 in
  let by_shared =
    if shared_bytes <= 0 then max_int else arch.Arch.shared_mem_per_sm / shared_bytes
  in
  max 1 (min (min by_threads by_blocks) (min by_warps by_shared))

let stream_efficiency (arch : Arch.t) = function
  | Scalar_loads -> arch.Arch.scalar_stream_efficiency
  | Vector_loads -> arch.Arch.vector_stream_efficiency
  | Staged_loads -> arch.Arch.staged_stream_efficiency

(** Cost one launch. [style] defaults to vectorized iff the kernel issued
    vector loads; baselines that stage through L2 pass [Staged_loads]
    explicitly. *)
let of_launch ?(style : stream_style option) (arch : Arch.t)
    (lr : Interp.launch_result) : t =
  let ev = lr.Interp.lr_events in
  let style =
    match style with
    | Some s -> s
    | None -> if ev.Events.vec_load_ops > 0.0 then Vector_loads else Scalar_loads
  in
  let resident = occupancy arch ~block:lr.Interp.lr_block ~shared_bytes:lr.Interp.lr_shared_bytes in
  let concurrent = arch.Arch.sms * resident in
  let waves = (lr.Interp.lr_grid + concurrent - 1) / concurrent in
  let cycles_to_us c = c /. (arch.Arch.clock_ghz *. 1000.0) in
  let critical_path_us =
    cycles_to_us (float_of_int waves *. lr.Interp.lr_block_cp)
  in
  let busy_sms = min arch.Arch.sms lr.Interp.lr_grid in
  let issue_us =
    cycles_to_us
      (ev.Events.warp_insts /. (arch.Arch.issue_rate *. float_of_int busy_sms))
  in
  let dram_us =
    ev.Events.bytes_dram
    /. (arch.Arch.dram_bw_gbs *. stream_efficiency arch style *. 1000.0)
  in
  let atomic_us = Events.max_heat ev *. arch.Arch.global_atomic_ns /. 1000.0 in
  let launch_us = arch.Arch.launch_overhead_us in
  let body =
    [
      ("cp", critical_path_us);
      ("issue", issue_us);
      ("dram", dram_us);
      ("atomic", atomic_us);
    ]
  in
  let bound, body_us =
    List.fold_left
      (fun ((_, bv) as b) ((_, v) as x) -> if v > bv then x else b)
      ("cp", critical_path_us) body
  in
  let bound = if launch_us > body_us then "launch" else bound in
  {
    time_us = launch_us +. body_us;
    bound;
    detail = { launch_us; critical_path_us; issue_us; dram_us; atomic_us };
    occupancy_blocks_per_sm = resident;
    waves;
  }

(** Cost a whole program execution: per-launch costs, plus the dependent
    kernel gap between consecutive launches and a host-side initialisation
    charge per identity-initialised temporary buffer. *)
let of_program (arch : Arch.t) ~(n_inits : int) (launches : t list) : float =
  let n = List.length launches in
  List.fold_left (fun acc c -> acc +. c.time_us) 0.0 launches
  +. (arch.Arch.kernel_gap_us *. float_of_int (max 0 (n - 1)))
  +. (arch.Arch.init_overhead_us *. float_of_int n_inits)

(* ------------------------------------------------------------------ *)
(* Static pricing (no execution)                                       *)
(* ------------------------------------------------------------------ *)

module Access = Device_ir.Access

(* price arch-independent event counts into per-warp pipelined cycles,
   applying exactly the interpreter's charging coefficients; the shared
   atomic term picks the lock-loop vs native-unit cost here, which is
   where the Kepler/Maxwell asymmetry enters the static model *)
let static_cycles (arch : Arch.t) (c : Access.counts) : float =
  let shared_atomic_cyc =
    match arch.Arch.shared_atomic with
    | Arch.Lock_update_unlock -> arch.Arch.cyc_lock_iteration
    | Arch.Native -> arch.Arch.cyc_shared_atomic
  in
  (c.Access.c_alu *. arch.Arch.cyc_alu)
  +. (c.Access.c_branches *. arch.Arch.cyc_branch)
  +. (c.Access.c_divergent *. arch.Arch.cyc_divergence)
  +. ((c.Access.c_gld_trans +. c.Access.c_gst_trans
      +. c.Access.c_atomic_global_trans)
     *. arch.Arch.cyc_global)
  +. (c.Access.c_shared_serial *. arch.Arch.cyc_shared)
  +. (c.Access.c_shfl *. arch.Arch.cyc_shfl)
  +. (c.Access.c_atomic_shared_serial *. shared_atomic_cyc)

(* block critical path: within an epoch warps run independently, a
   barrier raises every warp to the slowest and adds cyc_sync — the same
   fold the interpreter performs on its wcycles accumulators *)
let static_block_cp (arch : Arch.t) (bp : Access.block_profile) : float =
  let epoch_max warps =
    Array.fold_left (fun acc c -> Float.max acc (static_cycles arch c)) 0.0 warps
  in
  let n_epochs = List.length bp.Access.bp_epochs in
  List.fold_left (fun acc e -> acc +. epoch_max e) 0.0 bp.Access.bp_epochs
  +. (float_of_int (max 0 (n_epochs - 1)) *. arch.Arch.cyc_sync)

(** Price one launch from a static prediction: the same four-term model
    as {!of_launch}, with every input derived from the analyzer instead
    of a run. *)
let of_static ?(style : stream_style option) (arch : Arch.t)
    (lp : Access.launch_pred) : t =
  let tot = lp.Access.lp_totals in
  let style =
    match style with
    | Some s -> s
    | None -> if tot.Access.c_vec_ops > 0.0 then Vector_loads else Scalar_loads
  in
  let resident =
    occupancy arch ~block:lp.Access.lp_block
      ~shared_bytes:lp.Access.lp_shared_bytes
  in
  let concurrent = arch.Arch.sms * resident in
  let grid = lp.Access.lp_grid in
  let waves = (grid + concurrent - 1) / concurrent in
  let cycles_to_us c = c /. (arch.Arch.clock_ghz *. 1000.0) in
  let cp_first = static_block_cp arch lp.Access.lp_first in
  let block_cp =
    match lp.Access.lp_last with
    | None -> cp_first
    | Some last ->
        ((cp_first *. float_of_int (grid - 1)) +. static_block_cp arch last)
        /. float_of_int grid
  in
  let critical_path_us = cycles_to_us (float_of_int waves *. block_cp) in
  let busy_sms = min arch.Arch.sms grid in
  let issue_us =
    cycles_to_us
      (tot.Access.c_warp_insts /. (arch.Arch.issue_rate *. float_of_int busy_sms))
  in
  let bytes_dram = 128.0 *. (tot.Access.c_gld_trans +. tot.Access.c_gst_trans) in
  let dram_us =
    bytes_dram /. (arch.Arch.dram_bw_gbs *. stream_efficiency arch style *. 1000.0)
  in
  let max_heat =
    if arch.Arch.has_scoped_atomics then lp.Access.lp_max_heat_scoped
    else lp.Access.lp_max_heat
  in
  let atomic_us = max_heat *. arch.Arch.global_atomic_ns /. 1000.0 in
  let launch_us = arch.Arch.launch_overhead_us in
  let body =
    [
      ("cp", critical_path_us);
      ("issue", issue_us);
      ("dram", dram_us);
      ("atomic", atomic_us);
    ]
  in
  let bound, body_us =
    List.fold_left
      (fun ((_, bv) as b) ((_, v) as x) -> if v > bv then x else b)
      ("cp", critical_path_us) body
  in
  let bound = if launch_us > body_us then "launch" else bound in
  {
    time_us = launch_us +. body_us;
    bound;
    detail = { launch_us; critical_path_us; issue_us; dram_us; atomic_us };
    occupancy_blocks_per_sm = resident;
    waves;
  }

(** Price a whole statically-analyzed program: {!of_static} per launch
    folded through the same gap/init charges as {!of_program}. *)
let of_static_program (arch : Arch.t) ~(n_inits : int)
    (an : Access.analysis) : float =
  of_program arch ~n_inits (List.map (of_static arch) an.Access.an_launches)

let pp fmt (c : t) =
  Format.fprintf fmt
    "%.3f us (%s-bound; launch %.2f, cp %.3f, issue %.3f, dram %.3f, atomic %.3f; \
     occupancy %d blocks/SM, %d waves)"
    c.time_us c.bound c.detail.launch_us c.detail.critical_path_us c.detail.issue_us
    c.detail.dram_us c.detail.atomic_us c.occupancy_blocks_per_sm c.waves
