(** Event counters gathered by the SIMT interpreter during one kernel
    launch.

    Counters are floats because sampled runs (see {!Interp.options}) scale
    partially-observed sections by their replication factor. *)

type t = {
  mutable warp_insts : float;  (** total issued warp instructions *)
  mutable alu_insts : float;
  mutable gld_warp_ops : float;  (** warp-level global load instructions *)
  mutable gld_trans : float;  (** 128-byte global load transactions *)
  mutable gst_trans : float;
  mutable bytes_dram : float;  (** DRAM traffic implied by the transactions *)
  mutable shared_ops : float;
  mutable shared_serial : float;
      (** bank-conflict serialisation: sum over warp accesses of the
          conflict degree (1 = conflict free) *)
  mutable shfl_insts : float;
  mutable syncs : float;
  mutable branches : float;
  mutable divergent_branches : float;
  mutable atomic_global_ops : float;  (** lane-level global atomic operations *)
  mutable atomic_global_trans : float;  (** distinct-address transactions *)
  mutable atomic_shared_ops : float;
  mutable atomic_shared_serial : float;
      (** sum over warp atomics of the same-address conflict degree *)
  mutable vec_load_ops : float;
  addr_heat : (int * int, float ref) Hashtbl.t;
      (** device-wide same-address pressure on the L2 atomic units, keyed
          by (buffer id, element index) *)
  mutable launched_blocks : int;
  mutable simulated_blocks : int;
}

val create : unit -> t

(** Record [by] atomic operations against one global address. *)
val heat : t -> buffer:int -> index:int -> by:float -> unit

(** The hottest global-atomic address's operation count (the cost model's
    device-wide serialisation term). *)
val max_heat : t -> float

(** Snapshot of the scalar counters, used to scale a partially-executed
    loop section by its replication factor. *)
type snapshot

val snapshot : t -> snapshot

(** Scale everything recorded since [s] by [factor] (adds
    [(factor - 1) * delta] to each scalar counter; address heat is not
    affected). *)
val scale_from : t -> snapshot -> factor:float -> unit

(** Scale all counters, including address heat (extrapolation from a
    sampled subset of blocks to the whole grid). *)
val scale_all : t -> factor:float -> unit

val pp : Format.formatter -> t -> unit

(** {2 Immutable totals}

    The profiler's currency: a frozen sum of launch counters that the
    service aggregates per (arch, version) and the [tangramc profile]
    table, the Prometheus exposition and [Stats.to_json] all read. *)

type totals = {
  t_launches : int;
  t_warp_insts : float;
  t_alu_insts : float;
  t_gld_warp_ops : float;
  t_gld_trans : float;
  t_gst_trans : float;
  t_bytes_dram : float;
  t_shared_ops : float;
  t_shared_serial : float;
  t_shfl_insts : float;
  t_syncs : float;
  t_branches : float;
  t_divergent_branches : float;
  t_atomic_global_ops : float;
  t_atomic_global_trans : float;
  t_atomic_shared_ops : float;
  t_atomic_shared_serial : float;
  t_vec_load_ops : float;
  t_max_heat : float;
}

val zero_totals : totals

(** Freeze one launch's counters ([t_launches] = 1). *)
val totals_of : t -> totals

(** Pointwise sum; [t_max_heat] takes the max (each launch serialises on
    its own hottest address). *)
val add_totals : totals -> totals -> totals

val totals_of_list : t list -> totals

(** The canonical (name, value) view in stable order — the single source
    of counter field names for every machine-readable artifact. *)
val totals_fields : totals -> (string * float) list
