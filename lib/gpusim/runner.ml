(* Program runner: executes a device-IR host program (buffers + launch
   sequence) on a simulated architecture and aggregates per-launch costs
   into a wall-clock estimate.

   The runner is the single entry point benches and tests go through:

   {[
     let outcome =
       Runner.run ~arch:Arch.kepler_k40c ~tunables:[ ("p", 256) ]
         ~input program
   ]}

   In {!Interp.exact} mode the returned [result] is the true value computed
   by the simulated kernels and can be checked against a reference; in
   {!Interp.approximate} mode only [time_us] is meaningful. *)

module Ir = Device_ir.Ir

type outcome = {
  result : float;
  time_us : float;
  exact : bool;  (** whether [result] is trustworthy (no sampling) *)
  launch_costs : Cost.t list;
  launch_results : Interp.launch_result list;
}

(** Program input: a dense array, or a synthetic buffer of logical size [n]
    that repeats [pattern] (power-of-two length) — the latter drives timing
    runs at paper-scale sizes without allocating gigabytes. *)
type input = Dense of float array | Synthetic of { n : int; pattern : float array }

let input_size = function Dense a -> Array.length a | Synthetic { n; _ } -> n

type compiled_program = {
  cp_program : Ir.program;
  cp_kernels : (string * Compiled.t) list;
}

(** Validate, sanitize and compile all kernels of a program once; the
    result can be run many times with different inputs, tunables and
    architectures. The race sanitizer runs right next to the
    well-formedness check: a variant that validates but races (a buggy
    rewrite pass) must never reach the tuner or the plan cache. *)
let compile (p : Ir.program) : compiled_program =
  Device_ir.Validate.check_program_exn p;
  Device_ir.Race.check_program_exn p;
  {
    cp_program = p;
    cp_kernels = List.map (fun k -> (k.Ir.k_name, Compiled.compile k)) p.Ir.p_kernels;
  }

let default_tunables (p : Ir.program) : (string * int) list =
  List.map
    (fun (name, candidates) ->
      match candidates with
      | v :: _ -> (name, v)
      | [] -> invalid_arg (Printf.sprintf "tunable %S has no candidates" name))
    p.Ir.p_tunables

let run_compiled_raw ?(opts = Interp.exact) ?(flip : Fault.flip option)
    ~(arch : Arch.t) ?(tunables : (string * int) list option) ~(input : input)
    (cp : compiled_program) : outcome =
  let p = cp.cp_program in
  let tunables =
    match tunables with Some t -> t | None -> default_tunables p
  in
  let n = input_size input in
  if n = 0 then invalid_arg "Runner.run: empty input";
  let ev_hexp h = Ir.eval_hexp ~n ~tunables h in
  (* Bind buffers: "input" is the caller's (read-only) array, "output" is a
     single cell, temporaries follow their declarations. *)
  let next_id = ref 0 in
  let fresh_id () = let i = !next_id in incr next_id; i in
  let buffers : (string, Interp.buffer) Hashtbl.t = Hashtbl.create 8 in
  (match input with
  | Dense data ->
      Hashtbl.add buffers "input"
        (Interp.make_buffer ~read_only:true ~ty:p.Ir.p_elem ~id:(fresh_id ()) data)
  | Synthetic { n; pattern } ->
      Hashtbl.add buffers "input"
        (Interp.make_virtual_buffer ~read_only:true ~ty:p.Ir.p_elem ~id:(fresh_id ())
           ~n pattern));
  Hashtbl.add buffers "output"
    (Interp.make_buffer ~ty:p.Ir.p_elem ~id:(fresh_id ()) (Array.make 1 0.0));
  let n_inits = ref 0 in
  List.iter
    (fun (b : Ir.buffer) ->
      let size = ev_hexp b.Ir.buf_size in
      if size < 1 then
        invalid_arg
          (Printf.sprintf "buffer %S has non-positive size %d" b.Ir.buf_name size);
      let init =
        match b.Ir.buf_init with
        | Some v -> incr n_inits; v
        | None -> 0.0
      in
      Hashtbl.add buffers b.Ir.buf_name
        (Interp.make_buffer ~ty:b.Ir.buf_ty ~id:(fresh_id ()) (Array.make size init)))
    p.Ir.p_buffers;
  let find_buffer name =
    match Hashtbl.find_opt buffers name with
    | Some b -> b
    | None -> invalid_arg (Printf.sprintf "unbound buffer %S" name)
  in
  (* A global-memory flip lands in one cell of a writable buffer (the
     output cell or a temporary), applied after the flip's launch — a
     corrupted partial that downstream launches consume, or a corrupted
     final result if it lands after the last launch. Buffer order is the
     declaration order, so the target cell is deterministic. *)
  let apply_global_flip (fl : Fault.flip) : unit =
    let bufs =
      List.map find_buffer
        ("output" :: List.map (fun (b : Ir.buffer) -> b.Ir.buf_name) p.Ir.p_buffers)
    in
    let total = List.fold_left (fun acc b -> acc + b.Interp.b_size) 0 bufs in
    if total > 0 then begin
      let rec go idx = function
        | [] -> ()
        | (b : Interp.buffer) :: rest ->
            if idx < b.Interp.b_size then
              b.Interp.data.(idx) <-
                Fault.flip_value b.Interp.b_ty ~bit:fl.Fault.fl_bit
                  b.Interp.data.(idx)
            else go (idx - b.Interp.b_size) rest
      in
      go (fl.Fault.fl_target mod total) bufs
    end
  in
  let n_launches = List.length p.Ir.p_launches in
  let launch_results =
    List.mapi
      (fun i (ln : Ir.launch) ->
        let k = List.assoc ln.Ir.ln_kernel cp.cp_kernels in
        let grid = ev_hexp ln.Ir.ln_grid in
        let block = ev_hexp ln.Ir.ln_block in
        let shared_elems = ev_hexp ln.Ir.ln_shared_elems in
        let globals = ref [] and params = ref [] in
        List.iter
          (fun (a : Ir.harg) ->
            match a with
            | Ir.Arg_buffer b -> globals := find_buffer b :: !globals
            | Ir.Arg_scalar h -> params := Value.VI (ev_hexp h) :: !params)
          ln.Ir.ln_args;
        let flip_here =
          match flip with
          | Some fl when fl.Fault.fl_launch mod n_launches = i -> Some fl
          | _ -> None
        in
        let kernel_flip =
          match flip_here with
          | Some fl when fl.Fault.fl_space <> Fault.Global_mem -> Some fl
          | _ -> None
        in
        let r =
          Interp.run_kernel ?flip:kernel_flip ~arch ~opts k ~grid ~block
            ~shared_elems
            ~globals:(Array.of_list (List.rev !globals))
            ~params:(Array.of_list (List.rev !params))
        in
        (match flip_here with
        | Some fl when fl.Fault.fl_space = Fault.Global_mem ->
            apply_global_flip fl
        | _ -> ());
        r)
      p.Ir.p_launches
  in
  let launch_costs = List.map (Cost.of_launch arch) launch_results in
  let time_us = Cost.of_program arch ~n_inits:!n_inits launch_costs in
  let result_buffer = find_buffer p.Ir.p_result in
  {
    result = result_buffer.Interp.data.(0);
    time_us;
    exact = opts.Interp.max_blocks = None && opts.Interp.loop_cap = None;
    launch_costs;
    launch_results;
  }

(* Fault injection wraps the raw runner: a roll per run decides between
   passing through, aborting (timeout raises Fault.Injected, transient
   raises Interp.Sim_error so it travels the organic error path), or
   post-processing a completed run (stall inflates the simulated time,
   corrupt replaces the result with NaN). A second, independent roll may
   additionally arm a silent bit flip that the raw runner lands
   mid-execution; flipped runs keep [exact = true] — the caller cannot
   tell, which is the failure mode the runtime guard exists to catch. *)
let run_compiled ?opts ?(fault : Fault.t option)
    ?(fault_version : string option) ~(arch : Arch.t)
    ?(tunables : (string * int) list option) ~(input : input)
    (cp : compiled_program) : outcome =
  let version =
    match fault_version with
    | Some v -> v
    | None -> ( match cp.cp_kernels with (name, _) :: _ -> name | [] -> "?")
  in
  let body () =
  let verdict =
    match fault with
    | None -> Fault.Pass
    | Some f -> Fault.roll f ~arch:arch.Arch.name ~version
  in
  (* Always drawn, even for runs a loud verdict will abort, so the flip
     stream position stays independent of the loud-fault rates. *)
  let flip =
    match fault with None -> None | Some f -> Fault.roll_flip f
  in
  let label () = Printf.sprintf "(%s, %s)" arch.Arch.name version in
  match verdict with
  | Fault.Fault Fault.Transient ->
      raise (Interp.Sim_error ("injected transient fault " ^ label ()))
  | Fault.Fault Fault.Timeout ->
      raise (Fault.Injected (Fault.Timeout, "injected kernel timeout " ^ label ()))
  | Fault.Fault Fault.Bit_flip ->
      (* unreachable: Fault.plan rejects Bit_flip in the kind mix *)
      assert false
  | Fault.Pass | Fault.Fault (Fault.Stall | Fault.Corrupt) -> (
      (match (fault, flip) with
      | Some f, Some fl -> Fault.record_flip f ~arch:arch.Arch.name ~version fl
      | _ -> ());
      let o = run_compiled_raw ?opts ?flip ~arch ?tunables ~input cp in
      match (verdict, fault) with
      | Fault.Fault Fault.Stall, Some f ->
          { o with time_us = o.time_us *. Fault.stall_factor f }
      | Fault.Fault Fault.Corrupt, _ -> { o with result = nan; exact = false }
      | _ -> o)
  in
  (* faulted runs that abort still record their span: the E is emitted by
     Fun.protect, so a trace accounts for every attempt, not just the
     successful ones *)
  if not (Obs.Trace.enabled ()) then body ()
  else
    Obs.Trace.span
      ~attrs:
        [
          ("arch", arch.Arch.name);
          ("version", version);
          ("n", string_of_int (input_size input));
        ]
      ~name:"run" body

(** One-shot convenience wrapper around {!compile} and {!run_compiled}. *)
let run ?opts ?fault ?fault_version ~arch ?tunables ~input (p : Ir.program) :
    outcome =
  run_compiled ?opts ?fault ?fault_version ~arch ?tunables ~input (compile p)
