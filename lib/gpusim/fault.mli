(** Deterministic fault injection for the simulated GPU stack.

    A fault {!plan} describes a seeded random process over kernel runs:
    each run "rolls" once against the plan and either passes or draws one
    of four fault kinds — a transient simulator error (retryable), a
    kernel timeout (the version misbehaving), an atomic-contention stall
    (the run completes but its simulated time is inflated) or a corrupted
    result (the run completes with a NaN value). Rolls consume a
    splitmix-style LCG stream seeded explicitly, so an entire fault
    schedule is reproducible from [(seed, request sequence)] alone — the
    property the chaos tests and the [--fault-seed] CLI flag rely on.

    The injection point is {!Runner.run_compiled}'s [?fault] argument;
    planning and tuning never inject (rankings stay deterministic). *)

(** The five injected failure modes. *)
type kind =
  | Transient  (** a {!Interp.Sim_error} that a retry may outlive *)
  | Timeout  (** the kernel never finishes: a hard per-version fault *)
  | Stall  (** atomic contention: the run succeeds but [stall_factor] times slower *)
  | Corrupt  (** the run "succeeds" with a NaN result *)
  | Bit_flip
      (** silent data corruption: one bit of simulated state is flipped
          mid-run and the result is finite but possibly wrong. Driven by
          the per-space [bitflip] rates, never by the kind mix. *)

val kind_name : kind -> string

(** Where a bit flip lands. *)
type space =
  | Global_mem  (** a cell of a writable global buffer *)
  | Shared_mem  (** a cell of a block's shared-memory tile *)
  | Register  (** a thread's accumulator register *)

val space_name : space -> string

(** A fully resolved flip: every field is drawn from the seeded flip
    stream, so the complete flip schedule is reproducible. Selectors are
    raw nonnegative draws; the injection site reduces them modulo the
    actual population (launch count, block count, cell count, ...). *)
type flip = {
  fl_space : space;
  fl_bit : int;  (** bit to toggle, 0..31, of the 32-bit representation *)
  fl_launch : int;  (** which kernel launch of the program *)
  fl_site : int;  (** which block / statement boundary inside the launch *)
  fl_target : int;  (** which cell / thread / register *)
}

(** One entry of the deterministic flip log. *)
type flip_record = {
  fr_roll : int;  (** value of {!rolls} when the flip was drawn *)
  fr_arch : string;
  fr_version : string;
  fr_flip : flip;
}

val pp_flip : Format.formatter -> flip -> unit

(** Raised by {!Runner.run_compiled} for injected {!Timeout} faults
    (injected {!Transient} faults raise {!Interp.Sim_error} so they travel
    the same path as organic simulator errors). *)
exception Injected of kind * string

(** An immutable fault plan. Effective fault probability for a run of
    [version] on [arch] is [(version override | rate) * (arch multiplier
    | 1.0)], clamped to [0, 1]; the faulting kind is then drawn from the
    [mix] weights. *)
type plan = {
  f_seed : int;
  f_rate : float;  (** base per-run fault probability, in [0, 1] *)
  f_version_rates : (string * float) list;
      (** per-version overrides of [f_rate], by {!Synthesis.Version.name} *)
  f_arch_rates : (string * float) list;
      (** per-architecture multipliers (default 1.0), by {!Arch.t} name *)
  f_mix : (kind * float) list;  (** relative kind weights *)
  f_stall_factor : float;  (** simulated-time multiplier of {!Stall} *)
  f_bitflip_rates : (space * float) list;
      (** per-space bit-flip probability per run, in [0, 1] *)
}

(** The default kind mix: transient-heavy
    ([Transient 0.5; Timeout 0.2; Corrupt 0.2; Stall 0.1]). *)
val default_mix : (kind * float) list

(** Build a plan. Defaults: [rate] 0.0, no per-version or per-arch
    overrides, {!default_mix}, [stall_factor] 8.0, [bitflip_rate] 0.0.
    [bitflip_rate] applies to all three spaces unless
    [bitflip_space_rates] overrides them individually (spaces absent from
    the override list get rate 0).
    @raise Invalid_argument when a rate lies outside [0, 1], a mix weight
    is negative, the mix has no positive weight or contains {!Bit_flip},
    or [stall_factor] < 1. *)
val plan :
  ?rate:float ->
  ?version_rates:(string * float) list ->
  ?arch_rates:(string * float) list ->
  ?mix:(kind * float) list ->
  ?stall_factor:float ->
  ?bitflip_rate:float ->
  ?bitflip_space_rates:(space * float) list ->
  seed:int ->
  unit ->
  plan

(** Mutable injector state: the plan plus the LCG stream position and
    injection counters. *)
type t

val create : plan -> t
val seed : t -> int
val stall_factor : t -> float

type verdict = Pass | Fault of kind

(** Advance the stream one step and decide the fate of one run of
    [version] on [arch]. Deterministic: a fresh {!t} over the same plan
    replays the same verdict sequence for the same label sequence. *)
val roll : t -> arch:string -> version:string -> verdict

(** Decide whether this run suffers a bit flip, and where. Draws from a
    dedicated LCG stream, so enabling bit flips never perturbs the
    {!roll} schedule, and each call consumes a fixed number of draws
    whether or not it fires. Drawing does not log: call {!record_flip}
    once the flip has actually been landed in simulated memory. *)
val roll_flip : t -> flip option

(** Count a drawn flip and append it to the flip log. The runner calls
    this only on runs that complete far enough for the flip to land —
    runs aborted by a loud Transient/Timeout verdict never apply their
    flip, and counting it would overstate the flip population that
    detection-rate metrics divide by. *)
val record_flip : t -> arch:string -> version:string -> flip -> unit

(** Reinterpret a stored scalar in its declared 32-bit representation,
    toggle [bit land 31], and return the stored-back float. [Pred] cells
    simply toggle truth. *)
val flip_value : Device_ir.Ir.scalar -> bit:int -> float -> float

(** {1 Per-device failure profiles}

    A profile describes how one simulated device of a fleet misbehaves
    over its lifetime. It is a pure function of the device's 1-based
    dispatch count — profiles own no random stream, so evaluating one
    never perturbs the loud-fault ({!roll}) or bit-flip ({!roll_flip})
    schedules. The fleet layer ([Runtime.Fleet]) owns the dispatch
    counter and asks the profile three questions per dispatch: is the
    device dead yet ({!profile_dead}), how degraded is its throughput
    ({!profile_slowdown}), and what intermittent fault rate should its
    private injector run at ({!profile_fault_rate}). *)

type profile =
  | Healthy  (** nominal: no deaths, no slowdown, no intermittent faults *)
  | Fail_stop of int
      (** the device dies the moment this (1-based) dispatch is attempted
          and never answers again *)
  | Fail_slow of { sl_onset : int; sl_ramp : int; sl_factor : float }
      (** a straggler: throughput multiplier ramps linearly from 1× to
          [sl_factor] over [sl_ramp] dispatches starting at [sl_onset] *)
  | Flaky of float
      (** intermittent: the device's private fault stream injects
          retryable transients at this per-run rate *)
  | Recovering of { rc_until : int; rc_factor : float }
      (** degraded [rc_factor]× through dispatch [rc_until], nominal
          after — the profile the readmission hysteresis exists for *)

(** @raise Invalid_argument on a malformed profile: a dispatch index
    < 1 (fail-stop, fail-slow onset/ramp), a throughput factor < 1, or
    a flaky rate outside [0, 1]. *)
val check_profile : profile -> unit

(** Render a profile in the [--device-profile] surface syntax
    ([healthy], [fail-stop@N], [fail-slow@ONSETxFACTOR+RAMP],
    [flaky@RATE], [recovering@UNTILxFACTOR]). *)
val profile_name : profile -> string

(** Parse {!profile_name}'s syntax back; [Error] carries the message
    the CLI prints. The [+RAMP] suffix of fail-slow is optional
    (default 1: full degradation at onset). *)
val profile_of_string : string -> (profile, string) result

(** Has a fail-stop profile's device died by [dispatch] (1-based,
    inclusive)? *)
val profile_dead : profile -> dispatch:int -> bool

(** Simulated-time multiplier at [dispatch] (1-based); 1.0 when
    nominal. *)
val profile_slowdown : profile -> dispatch:int -> float

(** Per-run rate of the device's private intermittent-fault stream
    (0 except for {!Flaky}). *)
val profile_fault_rate : profile -> float

(** A {!Fail_stop} whose death dispatch is drawn uniformly from
    [1, horizon] by a throwaway LCG over [seed] — one draw at
    construction, deterministic thereafter.
    @raise Invalid_argument when [horizon] < 1. *)
val seeded_fail_stop : seed:int -> horizon:int -> profile

(** {1 Observability} *)

(** Rolls performed so far (bit-flip rolls not included). *)
val rolls : t -> int

(** Faults injected so far (all kinds, bit flips included). *)
val injected : t -> int

(** Injections per kind, fixed order
    (Transient, Timeout, Stall, Corrupt, Bit_flip). *)
val injected_by_kind : t -> (kind * int) list

(** The deterministic flip log, in injection order. *)
val flips : t -> flip_record list
