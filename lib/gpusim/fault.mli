(** Deterministic fault injection for the simulated GPU stack.

    A fault {!plan} describes a seeded random process over kernel runs:
    each run "rolls" once against the plan and either passes or draws one
    of four fault kinds — a transient simulator error (retryable), a
    kernel timeout (the version misbehaving), an atomic-contention stall
    (the run completes but its simulated time is inflated) or a corrupted
    result (the run completes with a NaN value). Rolls consume a
    splitmix-style LCG stream seeded explicitly, so an entire fault
    schedule is reproducible from [(seed, request sequence)] alone — the
    property the chaos tests and the [--fault-seed] CLI flag rely on.

    The injection point is {!Runner.run_compiled}'s [?fault] argument;
    planning and tuning never inject (rankings stay deterministic). *)

(** The four injected failure modes. *)
type kind =
  | Transient  (** a {!Interp.Sim_error} that a retry may outlive *)
  | Timeout  (** the kernel never finishes: a hard per-version fault *)
  | Stall  (** atomic contention: the run succeeds but [stall_factor] times slower *)
  | Corrupt  (** the run "succeeds" with a NaN result *)

val kind_name : kind -> string

(** Raised by {!Runner.run_compiled} for injected {!Timeout} faults
    (injected {!Transient} faults raise {!Interp.Sim_error} so they travel
    the same path as organic simulator errors). *)
exception Injected of kind * string

(** An immutable fault plan. Effective fault probability for a run of
    [version] on [arch] is [(version override | rate) * (arch multiplier
    | 1.0)], clamped to [0, 1]; the faulting kind is then drawn from the
    [mix] weights. *)
type plan = {
  f_seed : int;
  f_rate : float;  (** base per-run fault probability, in [0, 1] *)
  f_version_rates : (string * float) list;
      (** per-version overrides of [f_rate], by {!Synthesis.Version.name} *)
  f_arch_rates : (string * float) list;
      (** per-architecture multipliers (default 1.0), by {!Arch.t} name *)
  f_mix : (kind * float) list;  (** relative kind weights *)
  f_stall_factor : float;  (** simulated-time multiplier of {!Stall} *)
}

(** The default kind mix: transient-heavy
    ([Transient 0.5; Timeout 0.2; Corrupt 0.2; Stall 0.1]). *)
val default_mix : (kind * float) list

(** Build a plan. Defaults: [rate] 0.0, no per-version or per-arch
    overrides, {!default_mix}, [stall_factor] 8.0.
    @raise Invalid_argument when a rate lies outside [0, 1], a mix weight
    is negative or the mix has no positive weight, or [stall_factor] < 1. *)
val plan :
  ?rate:float ->
  ?version_rates:(string * float) list ->
  ?arch_rates:(string * float) list ->
  ?mix:(kind * float) list ->
  ?stall_factor:float ->
  seed:int ->
  unit ->
  plan

(** Mutable injector state: the plan plus the LCG stream position and
    injection counters. *)
type t

val create : plan -> t
val seed : t -> int
val stall_factor : t -> float

type verdict = Pass | Fault of kind

(** Advance the stream one step and decide the fate of one run of
    [version] on [arch]. Deterministic: a fresh {!t} over the same plan
    replays the same verdict sequence for the same label sequence. *)
val roll : t -> arch:string -> version:string -> verdict

(** {1 Observability} *)

(** Rolls performed so far. *)
val rolls : t -> int

(** Faults injected so far (all kinds). *)
val injected : t -> int

(** Injections per kind, fixed order (Transient, Timeout, Stall, Corrupt). *)
val injected_by_kind : t -> (kind * int) list
