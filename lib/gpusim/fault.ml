(* Deterministic fault injection.

   A seeded LCG (same MMIX multiplier the trace generator uses) drives
   every decision, so a fault schedule is a pure function of (seed,
   sequence of rolls). Each roll consumes exactly two draws — fault?
   and which kind? — whether or not it faults, keeping the stream
   position independent of the configured rates: raising the rate
   changes which rolls fault, not where later rolls land. *)

type kind = Transient | Timeout | Stall | Corrupt | Bit_flip

let kind_name = function
  | Transient -> "transient"
  | Timeout -> "timeout"
  | Stall -> "stall"
  | Corrupt -> "corrupt"
  | Bit_flip -> "bit-flip"

exception Injected of kind * string

type space = Global_mem | Shared_mem | Register

let space_name = function
  | Global_mem -> "global"
  | Shared_mem -> "shared"
  | Register -> "register"

type flip = {
  fl_space : space;
  fl_bit : int;
  fl_launch : int;
  fl_site : int;
  fl_target : int;
}

type flip_record = {
  fr_roll : int;
  fr_arch : string;
  fr_version : string;
  fr_flip : flip;
}

let pp_flip fmt (fl : flip) =
  Format.fprintf fmt "%s bit %d launch %d site %d target %d"
    (space_name fl.fl_space) fl.fl_bit fl.fl_launch fl.fl_site fl.fl_target

type plan = {
  f_seed : int;
  f_rate : float;
  f_version_rates : (string * float) list;
  f_arch_rates : (string * float) list;
  f_mix : (kind * float) list;
  f_stall_factor : float;
  f_bitflip_rates : (space * float) list;
}

let default_mix =
  [ (Transient, 0.5); (Timeout, 0.2); (Corrupt, 0.2); (Stall, 0.1) ]

let check_rate what r =
  if not (r >= 0.0 && r <= 1.0) then
    invalid_arg (Printf.sprintf "Fault.plan: %s %g outside [0, 1]" what r)

let spaces = [ Global_mem; Shared_mem; Register ]

let plan ?(rate = 0.0) ?(version_rates = []) ?(arch_rates = [])
    ?(mix = default_mix) ?(stall_factor = 8.0) ?(bitflip_rate = 0.0)
    ?bitflip_space_rates ~seed () : plan =
  check_rate "rate" rate;
  check_rate "bitflip_rate" bitflip_rate;
  let bitflip_rates =
    match bitflip_space_rates with
    | Some l ->
        List.iter
          (fun (s, r) -> check_rate ("bit-flip rate of space " ^ space_name s) r)
          l;
        List.map
          (fun s -> (s, Option.value ~default:0.0 (List.assoc_opt s l)))
          spaces
    | None -> List.map (fun s -> (s, bitflip_rate)) spaces
  in
  if List.mem_assoc Bit_flip mix then
    invalid_arg
      "Fault.plan: Bit_flip is driven by bitflip_rate, not the kind mix";
  List.iter (fun (v, r) -> check_rate ("rate of version " ^ v) r) version_rates;
  List.iter
    (fun (a, m) ->
      if m < 0.0 then
        invalid_arg
          (Printf.sprintf "Fault.plan: negative multiplier %g for arch %s" m a))
    arch_rates;
  List.iter
    (fun (k, w) ->
      if w < 0.0 then
        invalid_arg
          (Printf.sprintf "Fault.plan: negative weight %g for kind %s" w
             (kind_name k)))
    mix;
  if List.fold_left (fun acc (_, w) -> acc +. w) 0.0 mix <= 0.0 then
    invalid_arg "Fault.plan: the kind mix has no positive weight";
  if stall_factor < 1.0 then
    invalid_arg "Fault.plan: stall_factor must be at least 1";
  {
    f_seed = seed;
    f_rate = rate;
    f_version_rates = version_rates;
    f_arch_rates = arch_rates;
    f_mix = mix;
    f_stall_factor = stall_factor;
    f_bitflip_rates = bitflip_rates;
  }

type t = {
  t_plan : plan;
  mutable state : int64;
  mutable flip_state : int64;
      (* separate LCG stream: bit-flip rolls never move the loud-fault
         stream, so enabling [bitflip_rate] replays the exact same
         transient/timeout/stall/corrupt schedule as before *)
  mutable n_rolls : int;
  mutable n_transient : int;
  mutable n_timeout : int;
  mutable n_stall : int;
  mutable n_corrupt : int;
  mutable n_bitflip : int;
  mutable flip_log : flip_record list;  (* most recent first *)
}

let lcg (state : int64) : int64 =
  Int64.add (Int64.mul state 6364136223846793005L) 1442695040888963407L

(* uniform in [0, 1) from the top 30 bits *)
let uniform (state : int64) : float =
  float_of_int (Int64.to_int (Int64.shift_right_logical state 34))
  /. 1073741824.0

let create (p : plan) : t =
  {
    t_plan = p;
    state = lcg (Int64.of_int p.f_seed);
    flip_state = lcg (Int64.logxor (Int64.of_int p.f_seed) 0x5DEECE66DL);
    n_rolls = 0;
    n_transient = 0;
    n_timeout = 0;
    n_stall = 0;
    n_corrupt = 0;
    n_bitflip = 0;
    flip_log = [];
  }

let seed t = t.t_plan.f_seed
let stall_factor t = t.t_plan.f_stall_factor

type verdict = Pass | Fault of kind

let effective_rate (p : plan) ~arch ~version : float =
  let base =
    Option.value ~default:p.f_rate (List.assoc_opt version p.f_version_rates)
  in
  let mult = Option.value ~default:1.0 (List.assoc_opt arch p.f_arch_rates) in
  Float.min 1.0 (Float.max 0.0 (base *. mult))

let draw_kind (p : plan) (u : float) : kind =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 p.f_mix in
  let target = u *. total in
  let rec go acc = function
    | [] -> fst (List.hd p.f_mix)
    | (k, w) :: rest -> if target < acc +. w then k else go (acc +. w) rest
  in
  go 0.0 p.f_mix

let roll (t : t) ~(arch : string) ~(version : string) : verdict =
  let s1 = lcg t.state in
  let s2 = lcg s1 in
  t.state <- s2;
  t.n_rolls <- t.n_rolls + 1;
  if uniform s1 >= effective_rate t.t_plan ~arch ~version then Pass
  else begin
    let k = draw_kind t.t_plan (uniform s2) in
    (match k with
    | Transient -> t.n_transient <- t.n_transient + 1
    | Timeout -> t.n_timeout <- t.n_timeout + 1
    | Stall -> t.n_stall <- t.n_stall + 1
    | Corrupt -> t.n_corrupt <- t.n_corrupt + 1
    | Bit_flip -> assert false (* plan rejects Bit_flip in the mix *));
    Fault k
  end

(* Bit-flip rolls consume exactly five draws from the dedicated flip
   stream — one per space plus bit and placement — whether or not a flip
   fires, so the schedule of flips at one rate is a strict subset of the
   schedule at any higher rate. *)
let roll_flip (t : t) : flip option =
  let p = t.t_plan in
  let draw () =
    let s = lcg t.flip_state in
    t.flip_state <- s;
    s
  in
  let fired =
    List.filter_map
      (fun space ->
        let u = uniform (draw ()) in
        let r = Option.value ~default:0.0 (List.assoc_opt space p.f_bitflip_rates) in
        if u < r then Some space else None)
      spaces
  in
  let s_bit = draw () and s_place = draw () in
  match fired with
  | [] -> None
  | space :: _ ->
      let bits i shift width =
        Int64.to_int (Int64.logand (Int64.shift_right_logical i shift)
                        (Int64.of_int ((1 lsl width) - 1)))
      in
      Some
        {
          fl_space = space;
          fl_bit = bits s_bit 36 5;
          fl_launch = bits s_bit 20 8;
          fl_site = bits s_place 40 16;
          fl_target = bits s_place 8 24;
        }

(* Counting is separate from drawing: a drawn flip only enters the log
   once the runner actually lands it in memory — runs aborted by a loud
   Transient/Timeout verdict never apply their flip, and counting it
   would overstate the flip population that detection rates divide by. *)
let record_flip (t : t) ~(arch : string) ~(version : string) (fl : flip) : unit =
  t.n_bitflip <- t.n_bitflip + 1;
  t.flip_log <-
    { fr_roll = t.n_rolls; fr_arch = arch; fr_version = version; fr_flip = fl }
    :: t.flip_log

let rolls t = t.n_rolls

let injected t =
  t.n_transient + t.n_timeout + t.n_stall + t.n_corrupt + t.n_bitflip

let injected_by_kind t =
  [
    (Transient, t.n_transient);
    (Timeout, t.n_timeout);
    (Stall, t.n_stall);
    (Corrupt, t.n_corrupt);
    (Bit_flip, t.n_bitflip);
  ]

let flips t = List.rev t.flip_log

(* ------------------------------------------------------------------ *)
(* Per-device failure profiles                                          *)
(* ------------------------------------------------------------------ *)

(* A profile is a pure function of the device's dispatch count — no
   stream of its own — so evaluating it never perturbs the loud-fault or
   bit-flip schedules. The only randomness a profile ever carries is
   baked in at construction time ([seeded_fail_stop] draws the death
   dispatch once from its own throwaway LCG). Dispatch indices are
   1-based: the first dispatch a device serves is dispatch 1. *)
type profile =
  | Healthy
  | Fail_stop of int
  | Fail_slow of { sl_onset : int; sl_ramp : int; sl_factor : float }
  | Flaky of float
  | Recovering of { rc_until : int; rc_factor : float }

let check_profile = function
  | Healthy -> ()
  | Fail_stop at ->
      if at < 1 then
        invalid_arg
          (Printf.sprintf "Fault.check_profile: fail-stop dispatch %d < 1" at)
  | Fail_slow { sl_onset; sl_ramp; sl_factor } ->
      if sl_onset < 1 then
        invalid_arg
          (Printf.sprintf "Fault.check_profile: fail-slow onset %d < 1" sl_onset);
      if sl_ramp < 1 then
        invalid_arg
          (Printf.sprintf "Fault.check_profile: fail-slow ramp %d < 1" sl_ramp);
      if sl_factor < 1.0 then
        invalid_arg
          (Printf.sprintf "Fault.check_profile: fail-slow factor %g < 1"
             sl_factor)
  | Flaky r -> check_rate "flaky rate" r
  | Recovering { rc_until; rc_factor } ->
      if rc_until < 0 then
        invalid_arg
          (Printf.sprintf "Fault.check_profile: recovery point %d < 0" rc_until);
      if rc_factor < 1.0 then
        invalid_arg
          (Printf.sprintf "Fault.check_profile: recovering factor %g < 1"
             rc_factor)

let profile_name = function
  | Healthy -> "healthy"
  | Fail_stop at -> Printf.sprintf "fail-stop@%d" at
  | Fail_slow { sl_onset; sl_ramp; sl_factor } ->
      if sl_ramp = 1 then Printf.sprintf "fail-slow@%dx%g" sl_onset sl_factor
      else Printf.sprintf "fail-slow@%dx%g+%d" sl_onset sl_factor sl_ramp
  | Flaky r -> Printf.sprintf "flaky@%g" r
  | Recovering { rc_until; rc_factor } ->
      Printf.sprintf "recovering@%dx%g" rc_until rc_factor

let profile_of_string (s : string) : (profile, string) result =
  let err () =
    Error
      (Printf.sprintf
         "unknown failure profile %S (expected healthy, fail-stop@N, \
          fail-slow@ONSETxFACTOR[+RAMP], flaky@RATE or recovering@UNTILxFACTOR)"
         s)
  in
  let num conv v = match conv v with Some x -> Ok x | None -> err () in
  let split c v =
    match String.index_opt v c with
    | None -> None
    | Some i ->
        Some (String.sub v 0 i, String.sub v (i + 1) (String.length v - i - 1))
  in
  let checked p = match check_profile p with () -> Ok p | exception Invalid_argument m -> Error m in
  match split '@' s with
  | None -> if s = "healthy" then Ok Healthy else err ()
  | Some (kind, arg) -> (
      match kind with
      | "fail-stop" ->
          Result.bind (num int_of_string_opt arg) (fun at ->
              checked (Fail_stop at))
      | "fail-slow" -> (
          let arg, ramp =
            match split '+' arg with None -> (arg, Ok 1) | Some (a, r) -> (a, num int_of_string_opt r)
          in
          match split 'x' arg with
          | None -> err ()
          | Some (onset, factor) ->
              Result.bind (num int_of_string_opt onset) (fun sl_onset ->
                  Result.bind (num float_of_string_opt factor) (fun sl_factor ->
                      Result.bind ramp (fun sl_ramp ->
                          checked (Fail_slow { sl_onset; sl_ramp; sl_factor })))))
      | "flaky" ->
          Result.bind (num float_of_string_opt arg) (fun r -> checked (Flaky r))
      | "recovering" -> (
          match split 'x' arg with
          | None -> err ()
          | Some (until_, factor) ->
              Result.bind (num int_of_string_opt until_) (fun rc_until ->
                  Result.bind (num float_of_string_opt factor) (fun rc_factor ->
                      checked (Recovering { rc_until; rc_factor }))))
      | _ -> err ())

let profile_dead (p : profile) ~(dispatch : int) : bool =
  match p with Fail_stop at -> dispatch >= at | _ -> false

let profile_slowdown (p : profile) ~(dispatch : int) : float =
  match p with
  | Healthy | Fail_stop _ | Flaky _ -> 1.0
  | Fail_slow { sl_onset; sl_ramp; sl_factor } ->
      if dispatch < sl_onset then 1.0
      else
        (* linear onset ramp: full degradation [sl_ramp] dispatches in *)
        let progress =
          Float.min 1.0
            (float_of_int (dispatch - sl_onset + 1) /. float_of_int sl_ramp)
        in
        1.0 +. ((sl_factor -. 1.0) *. progress)
  | Recovering { rc_until; rc_factor } ->
      if dispatch <= rc_until then rc_factor else 1.0

let profile_fault_rate (p : profile) : float =
  match p with Flaky r -> r | _ -> 0.0

(* "fail-stop at a seeded time": the death dispatch is drawn once, from
   a throwaway LCG over (seed), uniform in [1, horizon]. *)
let seeded_fail_stop ~(seed : int) ~(horizon : int) : profile =
  if horizon < 1 then
    invalid_arg
      (Printf.sprintf "Fault.seeded_fail_stop: horizon %d < 1" horizon);
  let s = lcg (lcg (Int64.of_int seed)) in
  let at = 1 + int_of_float (uniform s *. float_of_int horizon) in
  Fail_stop (Stdlib.min horizon at)

(* ------------------------------------------------------------------ *)
(* Applying a flip to a stored scalar                                   *)
(* ------------------------------------------------------------------ *)

(* Simulated memory holds every scalar as an OCaml float; a flip
   reinterprets the cell in its declared 32-bit representation, toggles
   one bit and stores the reinterpreted result back. F32 flips can yield
   NaN or infinity (caught downstream like a Corrupt fault); integer
   flips always stay finite — the silent case the guard exists for. *)
let flip_value (ty : Device_ir.Ir.scalar) ~(bit : int) (x : float) : float =
  let bit = bit land 31 in
  match ty with
  | Device_ir.Ir.F32 ->
      Int32.float_of_bits
        (Int32.logxor (Int32.bits_of_float x) (Int32.shift_left 1l bit))
  | Device_ir.Ir.I32 | Device_ir.Ir.U32 ->
      let i = Int64.of_float x in
      let flipped = Int64.logxor i (Int64.shift_left 1L bit) in
      (* renormalise to the signed 32-bit range the interpreter uses *)
      Int64.to_float (Int64.of_int32 (Int64.to_int32 flipped))
  | Device_ir.Ir.Pred -> if x = 0.0 then 1.0 else 0.0
