(* Deterministic fault injection.

   A seeded LCG (same MMIX multiplier the trace generator uses) drives
   every decision, so a fault schedule is a pure function of (seed,
   sequence of rolls). Each roll consumes exactly two draws — fault?
   and which kind? — whether or not it faults, keeping the stream
   position independent of the configured rates: raising the rate
   changes which rolls fault, not where later rolls land. *)

type kind = Transient | Timeout | Stall | Corrupt

let kind_name = function
  | Transient -> "transient"
  | Timeout -> "timeout"
  | Stall -> "stall"
  | Corrupt -> "corrupt"

exception Injected of kind * string

type plan = {
  f_seed : int;
  f_rate : float;
  f_version_rates : (string * float) list;
  f_arch_rates : (string * float) list;
  f_mix : (kind * float) list;
  f_stall_factor : float;
}

let default_mix =
  [ (Transient, 0.5); (Timeout, 0.2); (Corrupt, 0.2); (Stall, 0.1) ]

let check_rate what r =
  if not (r >= 0.0 && r <= 1.0) then
    invalid_arg (Printf.sprintf "Fault.plan: %s %g outside [0, 1]" what r)

let plan ?(rate = 0.0) ?(version_rates = []) ?(arch_rates = [])
    ?(mix = default_mix) ?(stall_factor = 8.0) ~seed () : plan =
  check_rate "rate" rate;
  List.iter (fun (v, r) -> check_rate ("rate of version " ^ v) r) version_rates;
  List.iter
    (fun (a, m) ->
      if m < 0.0 then
        invalid_arg
          (Printf.sprintf "Fault.plan: negative multiplier %g for arch %s" m a))
    arch_rates;
  List.iter
    (fun (k, w) ->
      if w < 0.0 then
        invalid_arg
          (Printf.sprintf "Fault.plan: negative weight %g for kind %s" w
             (kind_name k)))
    mix;
  if List.fold_left (fun acc (_, w) -> acc +. w) 0.0 mix <= 0.0 then
    invalid_arg "Fault.plan: the kind mix has no positive weight";
  if stall_factor < 1.0 then
    invalid_arg "Fault.plan: stall_factor must be at least 1";
  {
    f_seed = seed;
    f_rate = rate;
    f_version_rates = version_rates;
    f_arch_rates = arch_rates;
    f_mix = mix;
    f_stall_factor = stall_factor;
  }

type t = {
  t_plan : plan;
  mutable state : int64;
  mutable n_rolls : int;
  mutable n_transient : int;
  mutable n_timeout : int;
  mutable n_stall : int;
  mutable n_corrupt : int;
}

let lcg (state : int64) : int64 =
  Int64.add (Int64.mul state 6364136223846793005L) 1442695040888963407L

(* uniform in [0, 1) from the top 30 bits *)
let uniform (state : int64) : float =
  float_of_int (Int64.to_int (Int64.shift_right_logical state 34))
  /. 1073741824.0

let create (p : plan) : t =
  {
    t_plan = p;
    state = lcg (Int64.of_int p.f_seed);
    n_rolls = 0;
    n_transient = 0;
    n_timeout = 0;
    n_stall = 0;
    n_corrupt = 0;
  }

let seed t = t.t_plan.f_seed
let stall_factor t = t.t_plan.f_stall_factor

type verdict = Pass | Fault of kind

let effective_rate (p : plan) ~arch ~version : float =
  let base =
    Option.value ~default:p.f_rate (List.assoc_opt version p.f_version_rates)
  in
  let mult = Option.value ~default:1.0 (List.assoc_opt arch p.f_arch_rates) in
  Float.min 1.0 (Float.max 0.0 (base *. mult))

let draw_kind (p : plan) (u : float) : kind =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 p.f_mix in
  let target = u *. total in
  let rec go acc = function
    | [] -> fst (List.hd p.f_mix)
    | (k, w) :: rest -> if target < acc +. w then k else go (acc +. w) rest
  in
  go 0.0 p.f_mix

let roll (t : t) ~(arch : string) ~(version : string) : verdict =
  let s1 = lcg t.state in
  let s2 = lcg s1 in
  t.state <- s2;
  t.n_rolls <- t.n_rolls + 1;
  if uniform s1 >= effective_rate t.t_plan ~arch ~version then Pass
  else begin
    let k = draw_kind t.t_plan (uniform s2) in
    (match k with
    | Transient -> t.n_transient <- t.n_transient + 1
    | Timeout -> t.n_timeout <- t.n_timeout + 1
    | Stall -> t.n_stall <- t.n_stall + 1
    | Corrupt -> t.n_corrupt <- t.n_corrupt + 1);
    Fault k
  end

let rolls t = t.n_rolls
let injected t = t.n_transient + t.n_timeout + t.n_stall + t.n_corrupt

let injected_by_kind t =
  [
    (Transient, t.n_transient);
    (Timeout, t.n_timeout);
    (Stall, t.n_stall);
    (Corrupt, t.n_corrupt);
  ]
