(** Warp-synchronous SIMT interpreter for compiled device-IR kernels.

    Blocks execute sequentially (the cost model accounts for inter-block
    parallelism); within a block, barrier-free statements run warp by warp
    in lock step under active-lane masks, and barrier-containing constructs
    are driven block-wide under (dynamically re-checked) block-uniform
    control flow. While executing, per-warp pipelined cycle costs and
    profiling events are charged according to the {!Arch} descriptor. See
    the implementation header for the full model. *)

(** Raised on anything a real GPU would turn into corruption or a hang:
    out-of-bounds accesses, barriers under divergent control flow, writes
    to read-only buffers, misaligned vector loads, runaway loops, resource
    over-subscription, and dynamic value traps. *)
exception Sim_error of string

type options = {
  max_blocks : int option;
      (** simulate at most this many blocks and extrapolate the counters *)
  loop_cap : int option;
      (** cut affine loops short after this many iterations and extrapolate
          the remainder from one representative iteration *)
  check_uniform : bool;
      (** verify block-wide conditions dynamically across every thread *)
}

(** Full-fidelity execution: every block, every iteration, uniformity
    checked. Results are exact. *)
val exact : options

(** Heavy sampling for timing-only runs; results are meaningless. *)
val approximate : options

type buffer = {
  data : float array;
  b_ty : Device_ir.Ir.scalar;
  b_id : int;
  b_read_only : bool;
  b_size : int;  (** logical element count (bounds checks use this) *)
  b_wrap : bool;  (** virtual buffer: [data] repeats cyclically *)
}

val make_buffer :
  ?read_only:bool -> ty:Device_ir.Ir.scalar -> id:int -> float array -> buffer

(** A virtual buffer of logical size [n] whose contents repeat [pattern]
    (whose length must be a power of two). Lets timing runs reach the
    paper's 268M-element sizes without allocating gigabytes. *)
val make_virtual_buffer :
  ?read_only:bool ->
  ty:Device_ir.Ir.scalar ->
  id:int ->
  n:int ->
  float array ->
  buffer

type launch_result = {
  lr_grid : int;
  lr_block : int;
  lr_shared_bytes : int;  (** per-block shared-memory footprint *)
  lr_events : Events.t;
  lr_block_cp : float;  (** mean per-block critical path, cycles *)
}

(** Execute a compiled kernel on [arch]. [globals] binds each kernel array
    slot to a buffer (in declaration order); [params] are the scalar
    arguments in declaration order. *)
val run_kernel :
  ?flip:Fault.flip ->
  arch:Arch.t ->
  opts:options ->
  Compiled.t ->
  grid:int ->
  block:int ->
  shared_elems:int ->
  globals:buffer array ->
  params:Value.t array ->
  launch_result
