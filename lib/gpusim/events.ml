(* Event counters gathered by the SIMT interpreter during one kernel launch.

   Counters are floats because sampled runs (see {!Interp.options}) scale
   partially-observed sections by their replication factor. *)

type t = {
  mutable warp_insts : float;  (** total issued warp instructions *)
  mutable alu_insts : float;
  mutable gld_warp_ops : float;  (** warp-level global load instructions *)
  mutable gld_trans : float;  (** 128-byte global load transactions *)
  mutable gst_trans : float;
  mutable bytes_dram : float;  (** DRAM traffic implied by the transactions *)
  mutable shared_ops : float;
  mutable shared_serial : float;
      (** bank-conflict serialisation: sum over warp accesses of the
          conflict degree (1 = conflict free) *)
  mutable shfl_insts : float;
  mutable syncs : float;
  mutable branches : float;
  mutable divergent_branches : float;
  mutable atomic_global_ops : float;  (** lane-level global atomic operations *)
  mutable atomic_global_trans : float;  (** distinct-address transactions *)
  mutable atomic_shared_ops : float;
  mutable atomic_shared_serial : float;
      (** sum over warp atomics of the same-address conflict degree *)
  mutable vec_load_ops : float;
  (* Device-wide same-address pressure on the L2 atomic units. Keyed by
     (buffer id, element index); the cost model uses the hottest address. *)
  addr_heat : (int * int, float ref) Hashtbl.t;
  mutable launched_blocks : int;
  mutable simulated_blocks : int;
}

let create () : t =
  {
    warp_insts = 0.0;
    alu_insts = 0.0;
    gld_warp_ops = 0.0;
    gld_trans = 0.0;
    gst_trans = 0.0;
    bytes_dram = 0.0;
    shared_ops = 0.0;
    shared_serial = 0.0;
    shfl_insts = 0.0;
    syncs = 0.0;
    branches = 0.0;
    divergent_branches = 0.0;
    atomic_global_ops = 0.0;
    atomic_global_trans = 0.0;
    atomic_shared_ops = 0.0;
    atomic_shared_serial = 0.0;
    vec_load_ops = 0.0;
    addr_heat = Hashtbl.create 64;
    launched_blocks = 0;
    simulated_blocks = 0;
  }

let heat (t : t) ~(buffer : int) ~(index : int) ~(by : float) : unit =
  match Hashtbl.find_opt t.addr_heat (buffer, index) with
  | Some r -> r := !r +. by
  | None -> Hashtbl.add t.addr_heat (buffer, index) (ref by)

let max_heat (t : t) : float =
  Hashtbl.fold (fun _ r acc -> Float.max !r acc) t.addr_heat 0.0

(** Snapshot of the scalar counters, used to scale a partially-executed
    loop section by its replication factor. Address heat is scaled at
    [scale_from] time via the per-key deltas, which would be expensive;
    instead loops under sampling scale heat by applying [by] directly when
    recording, so snapshots ignore [addr_heat]. *)
type snapshot = {
  s_warp_insts : float;
  s_alu_insts : float;
  s_gld_warp_ops : float;
  s_gld_trans : float;
  s_gst_trans : float;
  s_bytes_dram : float;
  s_shared_ops : float;
  s_shared_serial : float;
  s_shfl_insts : float;
  s_syncs : float;
  s_branches : float;
  s_divergent_branches : float;
  s_atomic_global_ops : float;
  s_atomic_global_trans : float;
  s_atomic_shared_ops : float;
  s_atomic_shared_serial : float;
  s_vec_load_ops : float;
}

let snapshot (t : t) : snapshot =
  {
    s_warp_insts = t.warp_insts;
    s_alu_insts = t.alu_insts;
    s_gld_warp_ops = t.gld_warp_ops;
    s_gld_trans = t.gld_trans;
    s_gst_trans = t.gst_trans;
    s_bytes_dram = t.bytes_dram;
    s_shared_ops = t.shared_ops;
    s_shared_serial = t.shared_serial;
    s_shfl_insts = t.shfl_insts;
    s_syncs = t.syncs;
    s_branches = t.branches;
    s_divergent_branches = t.divergent_branches;
    s_atomic_global_ops = t.atomic_global_ops;
    s_atomic_global_trans = t.atomic_global_trans;
    s_atomic_shared_ops = t.atomic_shared_ops;
    s_atomic_shared_serial = t.atomic_shared_serial;
    s_vec_load_ops = t.vec_load_ops;
  }

(** Scale everything recorded since [s] by [factor] (i.e. add
    [(factor - 1) * delta] to each counter). *)
let scale_from (t : t) (s : snapshot) ~(factor : float) : unit =
  let f = factor -. 1.0 in
  t.warp_insts <- t.warp_insts +. (f *. (t.warp_insts -. s.s_warp_insts));
  t.alu_insts <- t.alu_insts +. (f *. (t.alu_insts -. s.s_alu_insts));
  t.gld_warp_ops <- t.gld_warp_ops +. (f *. (t.gld_warp_ops -. s.s_gld_warp_ops));
  t.gld_trans <- t.gld_trans +. (f *. (t.gld_trans -. s.s_gld_trans));
  t.gst_trans <- t.gst_trans +. (f *. (t.gst_trans -. s.s_gst_trans));
  t.bytes_dram <- t.bytes_dram +. (f *. (t.bytes_dram -. s.s_bytes_dram));
  t.shared_ops <- t.shared_ops +. (f *. (t.shared_ops -. s.s_shared_ops));
  t.shared_serial <- t.shared_serial +. (f *. (t.shared_serial -. s.s_shared_serial));
  t.shfl_insts <- t.shfl_insts +. (f *. (t.shfl_insts -. s.s_shfl_insts));
  t.syncs <- t.syncs +. (f *. (t.syncs -. s.s_syncs));
  t.branches <- t.branches +. (f *. (t.branches -. s.s_branches));
  t.divergent_branches <-
    t.divergent_branches +. (f *. (t.divergent_branches -. s.s_divergent_branches));
  t.atomic_global_ops <-
    t.atomic_global_ops +. (f *. (t.atomic_global_ops -. s.s_atomic_global_ops));
  t.atomic_global_trans <-
    t.atomic_global_trans +. (f *. (t.atomic_global_trans -. s.s_atomic_global_trans));
  t.atomic_shared_ops <-
    t.atomic_shared_ops +. (f *. (t.atomic_shared_ops -. s.s_atomic_shared_ops));
  t.atomic_shared_serial <-
    t.atomic_shared_serial +. (f *. (t.atomic_shared_serial -. s.s_atomic_shared_serial));
  t.vec_load_ops <- t.vec_load_ops +. (f *. (t.vec_load_ops -. s.s_vec_load_ops))

(** Scale all counters (used to extrapolate from a sampled subset of blocks
    to the whole grid). Address heat scales uniformly too. *)
let scale_all (t : t) ~(factor : float) : unit =
  let dummy = snapshot (create ()) in
  scale_from t dummy ~factor;
  Hashtbl.iter (fun _ r -> r := !r *. factor) t.addr_heat

(* ------------------------------------------------------------------ *)
(* Immutable totals (the profiler's currency)                          *)
(* ------------------------------------------------------------------ *)

type totals = {
  t_launches : int;
  t_warp_insts : float;
  t_alu_insts : float;
  t_gld_warp_ops : float;
  t_gld_trans : float;
  t_gst_trans : float;
  t_bytes_dram : float;
  t_shared_ops : float;
  t_shared_serial : float;
  t_shfl_insts : float;
  t_syncs : float;
  t_branches : float;
  t_divergent_branches : float;
  t_atomic_global_ops : float;
  t_atomic_global_trans : float;
  t_atomic_shared_ops : float;
  t_atomic_shared_serial : float;
  t_vec_load_ops : float;
  t_max_heat : float;
}

let zero_totals : totals =
  {
    t_launches = 0;
    t_warp_insts = 0.0;
    t_alu_insts = 0.0;
    t_gld_warp_ops = 0.0;
    t_gld_trans = 0.0;
    t_gst_trans = 0.0;
    t_bytes_dram = 0.0;
    t_shared_ops = 0.0;
    t_shared_serial = 0.0;
    t_shfl_insts = 0.0;
    t_syncs = 0.0;
    t_branches = 0.0;
    t_divergent_branches = 0.0;
    t_atomic_global_ops = 0.0;
    t_atomic_global_trans = 0.0;
    t_atomic_shared_ops = 0.0;
    t_atomic_shared_serial = 0.0;
    t_vec_load_ops = 0.0;
    t_max_heat = 0.0;
  }

let totals_of (t : t) : totals =
  {
    t_launches = 1;
    t_warp_insts = t.warp_insts;
    t_alu_insts = t.alu_insts;
    t_gld_warp_ops = t.gld_warp_ops;
    t_gld_trans = t.gld_trans;
    t_gst_trans = t.gst_trans;
    t_bytes_dram = t.bytes_dram;
    t_shared_ops = t.shared_ops;
    t_shared_serial = t.shared_serial;
    t_shfl_insts = t.shfl_insts;
    t_syncs = t.syncs;
    t_branches = t.branches;
    t_divergent_branches = t.divergent_branches;
    t_atomic_global_ops = t.atomic_global_ops;
    t_atomic_global_trans = t.atomic_global_trans;
    t_atomic_shared_ops = t.atomic_shared_ops;
    t_atomic_shared_serial = t.atomic_shared_serial;
    t_vec_load_ops = t.vec_load_ops;
    t_max_heat = max_heat t;
  }

(* max_heat does not sum across launches: each launch serialises on its
   own hottest address, so the aggregate keeps the worst launch *)
let add_totals (a : totals) (b : totals) : totals =
  {
    t_launches = a.t_launches + b.t_launches;
    t_warp_insts = a.t_warp_insts +. b.t_warp_insts;
    t_alu_insts = a.t_alu_insts +. b.t_alu_insts;
    t_gld_warp_ops = a.t_gld_warp_ops +. b.t_gld_warp_ops;
    t_gld_trans = a.t_gld_trans +. b.t_gld_trans;
    t_gst_trans = a.t_gst_trans +. b.t_gst_trans;
    t_bytes_dram = a.t_bytes_dram +. b.t_bytes_dram;
    t_shared_ops = a.t_shared_ops +. b.t_shared_ops;
    t_shared_serial = a.t_shared_serial +. b.t_shared_serial;
    t_shfl_insts = a.t_shfl_insts +. b.t_shfl_insts;
    t_syncs = a.t_syncs +. b.t_syncs;
    t_branches = a.t_branches +. b.t_branches;
    t_divergent_branches = a.t_divergent_branches +. b.t_divergent_branches;
    t_atomic_global_ops = a.t_atomic_global_ops +. b.t_atomic_global_ops;
    t_atomic_global_trans = a.t_atomic_global_trans +. b.t_atomic_global_trans;
    t_atomic_shared_ops = a.t_atomic_shared_ops +. b.t_atomic_shared_ops;
    t_atomic_shared_serial = a.t_atomic_shared_serial +. b.t_atomic_shared_serial;
    t_vec_load_ops = a.t_vec_load_ops +. b.t_vec_load_ops;
    t_max_heat = Float.max a.t_max_heat b.t_max_heat;
  }

let totals_of_list (ts : t list) : totals =
  List.fold_left (fun acc t -> add_totals acc (totals_of t)) zero_totals ts

(* The canonical (name, value) view, in stable order. The profile table,
   the Prometheus exposition and [Stats.to_json] all derive their field
   names from here so they can never drift apart. *)
let totals_fields (t : totals) : (string * float) list =
  [
    ("launches", float_of_int t.t_launches);
    ("warp_insts", t.t_warp_insts);
    ("alu_insts", t.t_alu_insts);
    ("gld_warp_ops", t.t_gld_warp_ops);
    ("gld_trans", t.t_gld_trans);
    ("gst_trans", t.t_gst_trans);
    ("bytes_dram", t.t_bytes_dram);
    ("shared_ops", t.t_shared_ops);
    ("shared_serial", t.t_shared_serial);
    ("shfl_insts", t.t_shfl_insts);
    ("syncs", t.t_syncs);
    ("branches", t.t_branches);
    ("divergent_branches", t.t_divergent_branches);
    ("atomic_global_ops", t.t_atomic_global_ops);
    ("atomic_global_trans", t.t_atomic_global_trans);
    ("atomic_shared_ops", t.t_atomic_shared_ops);
    ("atomic_shared_serial", t.t_atomic_shared_serial);
    ("vec_load_ops", t.t_vec_load_ops);
    ("max_heat", t.t_max_heat);
  ]

let pp fmt (t : t) =
  Format.fprintf fmt
    "@[<v>warp insts     %.0f@,alu            %.0f@,gld ops/trans  %.0f / %.0f@,\
     gst trans      %.0f@,dram bytes     %.0f@,shared ops     %.0f (serial %.0f)@,\
     shfl           %.0f@,syncs          %.0f@,branches       %.0f (divergent %.0f)@,\
     atomics global %.0f ops / %.0f trans (max heat %.0f)@,\
     atomics shared %.0f ops (serial %.0f)@,vec loads      %.0f@,\
     blocks         %d launched / %d simulated@]"
    t.warp_insts t.alu_insts t.gld_warp_ops t.gld_trans t.gst_trans t.bytes_dram
    t.shared_ops t.shared_serial t.shfl_insts t.syncs t.branches
    t.divergent_branches t.atomic_global_ops t.atomic_global_trans (max_heat t)
    t.atomic_shared_ops t.atomic_shared_serial t.vec_load_ops t.launched_blocks
    t.simulated_blocks
