(** Analytic cost model: launch events -> wall-clock time.

    Per launch, the model takes the maximum of four resource terms
    (per-block critical path over occupancy waves, issue throughput, DRAM
    traffic at the achieved stream efficiency, hottest-address atomic
    serialisation) and adds the fixed launch overhead. See the
    implementation header for the full derivation. *)

type breakdown = {
  launch_us : float;
  critical_path_us : float;
  issue_us : float;
  dram_us : float;
  atomic_us : float;
}

type t = {
  time_us : float;
  bound : string;
      (** the winning term: "launch" | "cp" | "issue" | "dram" | "atomic" *)
  detail : breakdown;
  occupancy_blocks_per_sm : int;
  waves : int;
}

(** How the kernel streams its input, selecting the bandwidth-efficiency
    factor of the architecture. *)
type stream_style = Scalar_loads | Vector_loads | Staged_loads

(** Resident blocks per SM under the limiting-resource rule (threads,
    block slots, warps, shared memory); at least 1. *)
val occupancy : Arch.t -> block:int -> shared_bytes:int -> int

val stream_efficiency : Arch.t -> stream_style -> float

(** Cost one launch. [style] defaults to vectorized iff the kernel issued
    vector loads; baselines that stage through the L2 pass [Staged_loads]
    explicitly. *)
val of_launch : ?style:stream_style -> Arch.t -> Interp.launch_result -> t

(** Aggregate a whole program: per-launch costs, the dependent-kernel gap
    between consecutive launches, and a host-side initialisation charge per
    identity-initialised temporary buffer. *)
val of_program : Arch.t -> n_inits:int -> t list -> float

(** {2 Static pricing}

    The same four-term model fed by {!Device_ir.Access} predictions
    instead of an executed launch — planning can price transactions and
    replays without running the kernel. *)

(** Arch-independent event counts priced into per-warp pipelined cycles
    with the interpreter's charging coefficients (the shared-atomic term
    selects the lock-loop vs native-unit cost). *)
val static_cycles : Arch.t -> Device_ir.Access.counts -> float

(** Predicted per-block critical path in cycles: per-epoch max over
    warps, barriers raising every warp to the slowest plus [cyc_sync]. *)
val static_block_cp : Arch.t -> Device_ir.Access.block_profile -> float

(** Price one launch from a static prediction. [style] defaults to
    vectorized iff the analyzer saw vector loads. *)
val of_static : ?style:stream_style -> Arch.t -> Device_ir.Access.launch_pred -> t

(** Price a whole statically-analyzed program ({!of_static} per launch,
    folded through the same gap/init charges as {!of_program}). *)
val of_static_program : Arch.t -> n_inits:int -> Device_ir.Access.analysis -> float

val pp : Format.formatter -> t -> unit
