(* Warp-synchronous SIMT interpreter for compiled device-IR kernels.

   Execution model
   ---------------
   Blocks execute one after another (the cost model, not the interpreter,
   accounts for inter-block parallelism). Within a block, statements that
   contain no barrier are executed warp by warp, each warp running the whole
   statement in lock step under an active-lane mask (branch divergence
   splits the mask, exactly like a SIMT reconvergence stack of depth one per
   nesting level). Statements containing a barrier require block-uniform
   control flow — the validator enforces this statically and the interpreter
   re-checks dynamically — and are driven block-wide, statement by
   statement, so that every warp reaches the barrier before any proceeds.

   Cost charging
   -------------
   While executing, the interpreter charges per-warp pipelined cycle costs
   (from the {!Arch} descriptor) into per-warp accumulators and raises them
   to a common maximum at barriers; the block's critical path is the largest
   accumulator at block end. It simultaneously counts events (transactions,
   conflicts, divergence, ...) in an {!Events.t}. Global-memory transaction
   counting models 128-byte coalescing; shared-memory accesses model
   32-bank conflicts; shared atomics are priced per same-address conflicting
   lane according to the architecture's implementation (lock-update-unlock
   vs native); global atomics additionally heat a per-address map used by
   the cost model for device-wide serialisation.

   Sampling
   --------
   With [options.max_blocks] set, only a sample of blocks executes and
   counters are extrapolated; with [options.loop_cap] set, affine loops are
   cut short and their remaining iterations extrapolated from the last
   executed one. Sampled runs produce meaningless data values and are only
   for timing, which is why {!exact} is the default. *)

module Ir = Device_ir.Ir
module C = Compiled

exception Sim_error of string

let sim_error fmt = Printf.ksprintf (fun s -> raise (Sim_error s)) fmt

type options = {
  max_blocks : int option;
  loop_cap : int option;
  check_uniform : bool;
}

let exact = { max_blocks = None; loop_cap = None; check_uniform = true }
let approximate = { max_blocks = Some 48; loop_cap = Some 48; check_uniform = false }

type buffer = {
  data : float array;
  b_ty : Ir.scalar;
  b_id : int;
  b_read_only : bool;  (** the input buffer: stores and atomics trap *)
  b_size : int;  (** logical element count (bounds checks use this) *)
  b_wrap : bool;
      (** virtual buffer: the logical range is larger than [data], which
          repeats cyclically ([Array.length data] must be a power of two).
          Used to drive timing runs at paper-scale sizes (up to 268M
          elements) without allocating gigabytes; results are then
          approximate. *)
}

let make_buffer ?(read_only = false) ~(ty : Ir.scalar) ~(id : int)
    (data : float array) : buffer =
  { data; b_ty = ty; b_id = id; b_read_only = read_only;
    b_size = Array.length data; b_wrap = false }

(** A virtual buffer of logical size [n] whose contents repeat [pattern]
    (length a power of two). *)
let make_virtual_buffer ?(read_only = false) ~(ty : Ir.scalar) ~(id : int) ~(n : int)
    (pattern : float array) : buffer =
  let len = Array.length pattern in
  if len land (len - 1) <> 0 || len = 0 then
    invalid_arg "make_virtual_buffer: pattern length must be a power of two";
  { data = pattern; b_ty = ty; b_id = id; b_read_only = read_only;
    b_size = n; b_wrap = true }

type block_ctx = {
  arch : Arch.t;
  opts : options;
  ev : Events.t;
  k : C.t;
  params : Value.t array;
  globals : buffer array;
  shared : float array array;
  regs : Value.t array array;  (** [thread][slot] *)
  wcycles : float array;  (** per-warp accumulated pipelined cycles *)
  nthreads : int;
  nwarps : int;
  mutable block_idx : int;
  grid_dim : int;
}

let warp_bits = 5
let warp_lanes = 32

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let rec eval (ctx : block_ctx) (tid : int) (e : C.cexp) : Value.t =
  match e with
  | C.CInt n -> Value.VI n
  | C.CFloat f -> Value.VF f
  | C.CBool b -> Value.VB b
  | C.CReg slot -> ctx.regs.(tid).(slot)
  | C.CParam slot -> ctx.params.(slot)
  | C.CSpecial s -> (
      match s with
      | Ir.Thread_idx -> Value.VI tid
      | Ir.Block_idx -> Value.VI ctx.block_idx
      | Ir.Block_dim -> Value.VI ctx.nthreads
      | Ir.Grid_dim -> Value.VI ctx.grid_dim
      | Ir.Warp_size -> Value.VI warp_lanes
      | Ir.Lane_id -> Value.VI (tid land (warp_lanes - 1))
      | Ir.Warp_id -> Value.VI (tid lsr warp_bits))
  | C.CUnop (op, a) -> Value.unop op (eval ctx tid a)
  | C.CBinop (op, a, b) -> Value.binop op (eval ctx tid a) (eval ctx tid b)
  | C.CSelect (c, a, b) ->
      if Value.to_bool (eval ctx tid c) then eval ctx tid a else eval ctx tid b

let eval_int ctx tid e = Value.to_int (eval ctx tid e)
let eval_bool ctx tid e = Value.to_bool (eval ctx tid e)

(* ------------------------------------------------------------------ *)
(* Memory helpers                                                      *)
(* ------------------------------------------------------------------ *)

let buffer_phys (b : buffer) (i : int) : int =
  if b.b_wrap then i land (Array.length b.data - 1) else i

let buffer_get (b : buffer) (i : int) : Value.t =
  if i < 0 || i >= b.b_size then
    sim_error "global array #%d: index %d out of bounds (size %d)" b.b_id i b.b_size
  else Value.of_float b.b_ty b.data.(buffer_phys b i)

let buffer_set (b : buffer) (i : int) (v : Value.t) : unit =
  if b.b_read_only then sim_error "global array #%d: write to read-only buffer" b.b_id
  else if i < 0 || i >= b.b_size then
    sim_error "global array #%d: store index %d out of bounds (size %d)" b.b_id i
      b.b_size
  else b.data.(buffer_phys b i) <- Value.to_float v

let shared_get (ctx : block_ctx) (slot : int) (i : int) : Value.t =
  let a = ctx.shared.(slot) in
  if i < 0 || i >= Array.length a then
    sim_error "%s: shared array %s: index %d out of bounds (size %d)" ctx.k.C.ck_name
      ctx.k.C.ck_shared.(slot).Ir.sh_name i (Array.length a)
  else Value.of_float ctx.k.C.ck_shared.(slot).Ir.sh_ty a.(i)

let shared_set (ctx : block_ctx) (slot : int) (i : int) (v : Value.t) : unit =
  let a = ctx.shared.(slot) in
  if i < 0 || i >= Array.length a then
    sim_error "%s: shared array %s: store index %d out of bounds (size %d)"
      ctx.k.C.ck_name ctx.k.C.ck_shared.(slot).Ir.sh_name i (Array.length a)
  else a.(i) <- Value.to_float v

(* 128-byte segments of 4-byte elements *)
let segment_of_index (i : int) : int = i lsr 5

(* Count distinct 128-byte segments among the active lanes' indices.
   [idxs] is dense over lanes; [mask] selects active lanes. *)
let count_segments (idxs : int array) (mask : bool array) (lanes : int) : int =
  let segs = ref [] in
  for l = 0 to lanes - 1 do
    if mask.(l) then begin
      let s = segment_of_index idxs.(l) in
      if not (List.mem s !segs) then segs := s :: !segs
    end
  done;
  List.length !segs

(* Bank-conflict degree: max over banks of the number of distinct addresses
   hitting the bank (same-address broadcast is conflict free). *)
let bank_conflict_degree (idxs : int array) (mask : bool array) (lanes : int) : int =
  let per_bank : int list array = Array.make 32 [] in
  for l = 0 to lanes - 1 do
    if mask.(l) then begin
      let bank = idxs.(l) land 31 in
      if not (List.mem idxs.(l) per_bank.(bank)) then
        per_bank.(bank) <- idxs.(l) :: per_bank.(bank)
    end
  done;
  Array.fold_left (fun acc l -> max acc (List.length l)) 1 per_bank

(* Same-address conflict statistics for an atomic executed by a warp:
   (number of distinct addresses, max same-address multiplicity). *)
let atomic_conflicts (idxs : int array) (mask : bool array) (lanes : int) :
    int * int =
  let groups : (int * int ref) list ref = ref [] in
  for l = 0 to lanes - 1 do
    if mask.(l) then
      match List.assoc_opt idxs.(l) !groups with
      | Some r -> incr r
      | None -> groups := (idxs.(l), ref 1) :: !groups
  done;
  let distinct = List.length !groups in
  let worst = List.fold_left (fun acc (_, r) -> max acc !r) 0 !groups in
  (distinct, worst)

(* ------------------------------------------------------------------ *)
(* Per-warp execution                                                  *)
(* ------------------------------------------------------------------ *)

let charge (ctx : block_ctx) (w : int) (cycles : float) : unit =
  ctx.wcycles.(w) <- ctx.wcycles.(w) +. cycles

let active_count (mask : bool array) (lanes : int) : int =
  let n = ref 0 in
  for l = 0 to lanes - 1 do
    if mask.(l) then incr n
  done;
  !n

(* lanes in warp [w]: [w*32 .. w*32 + lanes-1]; the last warp of a block may
   have fewer lanes than 32 *)
let warp_lanes_count (ctx : block_ctx) (w : int) : int =
  min warp_lanes (ctx.nthreads - (w * warp_lanes))

let apply_atomic (ctx : block_ctx) ~(space : Ir.space) ~(slot : int)
    (op : Ir.atomic_op) (i : int) (v : Value.t) : Value.t =
  match space with
  | Ir.Global ->
      let b = ctx.globals.(slot) in
      let old = buffer_get b i in
      buffer_set b i
        (Value.of_float b.b_ty (Ir.combine op (Value.to_float old) (Value.to_float v)));
      old
  | Ir.Shared ->
      let old = shared_get ctx slot i in
      shared_set ctx slot i
        (Value.of_float ctx.k.C.ck_shared.(slot).Ir.sh_ty
           (Ir.combine op (Value.to_float old) (Value.to_float v)));
      old

let scratch_idx = Array.make warp_lanes 0
let scratch_val : Value.t array = Array.make warp_lanes Value.zero

let rec exec_warp (ctx : block_ctx) (w : int) (mask : bool array) (s : C.cstmt) :
    unit =
  let lanes = warp_lanes_count ctx w in
  let base = w * warp_lanes in
  let a = ctx.arch in
  match s with
  | C.CLet (slot, e) ->
      for l = 0 to lanes - 1 do
        if mask.(l) then ctx.regs.(base + l).(slot) <- eval ctx (base + l) e
      done;
      ctx.ev.Events.warp_insts <- ctx.ev.Events.warp_insts +. 1.0;
      ctx.ev.Events.alu_insts <- ctx.ev.Events.alu_insts +. 1.0;
      charge ctx w a.Arch.cyc_alu
  | C.CLoad { l_arr; l_dst; l_idx } -> (
      for l = 0 to lanes - 1 do
        if mask.(l) then scratch_idx.(l) <- eval_int ctx (base + l) l_idx
      done;
      match l_arr.C.a_space with
      | Ir.Global ->
          let b = ctx.globals.(l_arr.C.a_slot) in
          for l = 0 to lanes - 1 do
            if mask.(l) then
              ctx.regs.(base + l).(l_dst) <- buffer_get b scratch_idx.(l)
          done;
          let trans = count_segments scratch_idx mask lanes in
          ctx.ev.Events.warp_insts <- ctx.ev.Events.warp_insts +. 1.0;
          ctx.ev.Events.gld_warp_ops <- ctx.ev.Events.gld_warp_ops +. 1.0;
          ctx.ev.Events.gld_trans <- ctx.ev.Events.gld_trans +. float_of_int trans;
          ctx.ev.Events.bytes_dram <-
            ctx.ev.Events.bytes_dram +. (128.0 *. float_of_int trans);
          charge ctx w (a.Arch.cyc_global *. float_of_int trans)
      | Ir.Shared ->
          for l = 0 to lanes - 1 do
            if mask.(l) then
              ctx.regs.(base + l).(l_dst) <- shared_get ctx l_arr.C.a_slot scratch_idx.(l)
          done;
          let degree = bank_conflict_degree scratch_idx mask lanes in
          ctx.ev.Events.warp_insts <- ctx.ev.Events.warp_insts +. 1.0;
          ctx.ev.Events.shared_ops <- ctx.ev.Events.shared_ops +. 1.0;
          ctx.ev.Events.shared_serial <-
            ctx.ev.Events.shared_serial +. float_of_int degree;
          charge ctx w (a.Arch.cyc_shared *. float_of_int degree))
  | C.CStore { st_arr; st_idx; st_v } -> (
      for l = 0 to lanes - 1 do
        if mask.(l) then begin
          scratch_idx.(l) <- eval_int ctx (base + l) st_idx;
          scratch_val.(l) <- eval ctx (base + l) st_v
        end
      done;
      match st_arr.C.a_space with
      | Ir.Global ->
          let b = ctx.globals.(st_arr.C.a_slot) in
          for l = 0 to lanes - 1 do
            if mask.(l) then buffer_set b scratch_idx.(l) scratch_val.(l)
          done;
          let trans = count_segments scratch_idx mask lanes in
          ctx.ev.Events.warp_insts <- ctx.ev.Events.warp_insts +. 1.0;
          ctx.ev.Events.gst_trans <- ctx.ev.Events.gst_trans +. float_of_int trans;
          ctx.ev.Events.bytes_dram <-
            ctx.ev.Events.bytes_dram +. (128.0 *. float_of_int trans);
          charge ctx w (a.Arch.cyc_global *. float_of_int trans)
      | Ir.Shared ->
          for l = 0 to lanes - 1 do
            if mask.(l) then shared_set ctx st_arr.C.a_slot scratch_idx.(l) scratch_val.(l)
          done;
          let degree = bank_conflict_degree scratch_idx mask lanes in
          ctx.ev.Events.warp_insts <- ctx.ev.Events.warp_insts +. 1.0;
          ctx.ev.Events.shared_ops <- ctx.ev.Events.shared_ops +. 1.0;
          ctx.ev.Events.shared_serial <-
            ctx.ev.Events.shared_serial +. float_of_int degree;
          charge ctx w (a.Arch.cyc_shared *. float_of_int degree))
  | C.CVec_load { vl_dsts; vl_arr; vl_base } ->
      let b = ctx.globals.(vl_arr) in
      let width = Array.length vl_dsts in
      let segs = ref [] in
      for l = 0 to lanes - 1 do
        if mask.(l) then begin
          let base_i = eval_int ctx (base + l) vl_base in
          if base_i mod width <> 0 then
            sim_error "%s: misaligned vector load at element %d (width %d)"
              ctx.k.C.ck_name base_i width;
          Array.iteri
            (fun j dst ->
              ctx.regs.(base + l).(dst) <- buffer_get b (base_i + j);
              let s = segment_of_index (base_i + j) in
              if not (List.mem s !segs) then segs := s :: !segs)
            vl_dsts
        end
      done;
      let trans = List.length !segs in
      ctx.ev.Events.warp_insts <- ctx.ev.Events.warp_insts +. 1.0;
      ctx.ev.Events.vec_load_ops <- ctx.ev.Events.vec_load_ops +. 1.0;
      ctx.ev.Events.gld_trans <- ctx.ev.Events.gld_trans +. float_of_int trans;
      ctx.ev.Events.bytes_dram <-
        ctx.ev.Events.bytes_dram +. (128.0 *. float_of_int trans);
      charge ctx w (a.Arch.cyc_global *. float_of_int trans)
  | C.CAtomic { at_dst; at_arr; at_op; at_scope; at_idx; at_v } -> (
      for l = 0 to lanes - 1 do
        if mask.(l) then begin
          scratch_idx.(l) <- eval_int ctx (base + l) at_idx;
          scratch_val.(l) <- eval ctx (base + l) at_v
        end
      done;
      (* lanes apply in lane order: deterministic serialisation *)
      for l = 0 to lanes - 1 do
        if mask.(l) then begin
          let old =
            apply_atomic ctx ~space:at_arr.C.a_space ~slot:at_arr.C.a_slot at_op
              scratch_idx.(l) scratch_val.(l)
          in
          if at_dst >= 0 then ctx.regs.(base + l).(at_dst) <- old
        end
      done;
      let n_active = active_count mask lanes in
      if n_active > 0 then
        let distinct, worst = atomic_conflicts scratch_idx mask lanes in
        match at_arr.C.a_space with
        | Ir.Shared -> (
            ctx.ev.Events.warp_insts <- ctx.ev.Events.warp_insts +. 1.0;
            ctx.ev.Events.atomic_shared_ops <-
              ctx.ev.Events.atomic_shared_ops +. float_of_int n_active;
            ctx.ev.Events.atomic_shared_serial <-
              ctx.ev.Events.atomic_shared_serial +. float_of_int worst;
            match a.Arch.shared_atomic with
            | Arch.Lock_update_unlock ->
                (* each lock round retires one lane per contended address and
                   replays the rest: [worst] rounds, every round a divergent
                   branch *)
                ctx.ev.Events.divergent_branches <-
                  ctx.ev.Events.divergent_branches +. float_of_int worst;
                charge ctx w (a.Arch.cyc_lock_iteration *. float_of_int worst)
            | Arch.Native ->
                charge ctx w (a.Arch.cyc_shared_atomic *. float_of_int worst))
        | Ir.Global ->
            ctx.ev.Events.warp_insts <- ctx.ev.Events.warp_insts +. 1.0;
            ctx.ev.Events.atomic_global_ops <-
              ctx.ev.Events.atomic_global_ops +. float_of_int n_active;
            ctx.ev.Events.atomic_global_trans <-
              ctx.ev.Events.atomic_global_trans +. float_of_int distinct;
            (* block-scoped atomics don't reach the device-wide L2 units *)
            let device_scope =
              (not (a.Arch.has_scoped_atomics && at_scope = Ir.Scope_block))
            in
            if device_scope then begin
              let b_id = ctx.globals.(at_arr.C.a_slot).b_id in
              for l = 0 to lanes - 1 do
                if mask.(l) then
                  Events.heat ctx.ev ~buffer:b_id ~index:scratch_idx.(l) ~by:1.0
              done
            end;
            charge ctx w (a.Arch.cyc_global *. float_of_int distinct))
  | C.CShfl { sh_dst; sh_mode; sh_v; sh_lane; sh_width } ->
      (* publish v from every lane of the warp (inactive lanes publish their
         current register state, deterministically) *)
      let width = sh_width in
      for l = 0 to warp_lanes - 1 do
        scratch_val.(l) <-
          (if l < lanes then eval ctx (base + l) sh_v else Value.zero)
      done;
      for l = 0 to lanes - 1 do
        if mask.(l) then begin
          let delta = eval_int ctx (base + l) sh_lane in
          let sub = l - (l mod width) in
          let src =
            match sh_mode with
            | Ir.Shfl_down -> if (l mod width) + delta < width then l + delta else l
            | Ir.Shfl_up -> if (l mod width) - delta >= 0 then l - delta else l
            | Ir.Shfl_xor ->
                let p = l lxor delta in
                if p - sub < width && p < warp_lanes then p else l
            | Ir.Shfl_idx -> sub + (delta mod width)
          in
          ctx.regs.(base + l).(sh_dst) <- scratch_val.(src)
        end
      done;
      ctx.ev.Events.warp_insts <- ctx.ev.Events.warp_insts +. 1.0;
      ctx.ev.Events.shfl_insts <- ctx.ev.Events.shfl_insts +. 1.0;
      charge ctx w a.Arch.cyc_shfl
  | C.CSync -> sim_error "%s: __syncthreads() under divergent control flow" ctx.k.C.ck_name
  | C.CIf { if_cond; if_then; if_else; if_sync } ->
      if if_sync then
        sim_error "%s: barrier inside thread-divergent conditional" ctx.k.C.ck_name;
      let tmask = Array.make warp_lanes false in
      let emask = Array.make warp_lanes false in
      let n_t = ref 0 and n_e = ref 0 in
      for l = 0 to lanes - 1 do
        if mask.(l) then
          if eval_bool ctx (base + l) if_cond then begin
            tmask.(l) <- true;
            incr n_t
          end
          else begin
            emask.(l) <- true;
            incr n_e
          end
      done;
      ctx.ev.Events.warp_insts <- ctx.ev.Events.warp_insts +. 1.0;
      ctx.ev.Events.branches <- ctx.ev.Events.branches +. 1.0;
      charge ctx w a.Arch.cyc_branch;
      if !n_t > 0 && !n_e > 0 then begin
        ctx.ev.Events.divergent_branches <- ctx.ev.Events.divergent_branches +. 1.0;
        charge ctx w a.Arch.cyc_divergence
      end;
      if !n_t > 0 then Array.iter (exec_warp ctx w tmask) if_then;
      if !n_e > 0 then Array.iter (exec_warp ctx w emask) if_else
  | C.CFor { f_var; f_init; f_cond; f_step; f_body; f_sync; f_affine } ->
      if f_sync then
        sim_error "%s: barrier inside thread-divergent loop" ctx.k.C.ck_name;
      for l = 0 to lanes - 1 do
        if mask.(l) then ctx.regs.(base + l).(f_var) <- eval ctx (base + l) f_init
      done;
      ctx.ev.Events.warp_insts <- ctx.ev.Events.warp_insts +. 1.0;
      ctx.ev.Events.alu_insts <- ctx.ev.Events.alu_insts +. 1.0;
      charge ctx w a.Arch.cyc_alu;
      let live = Array.copy mask in
      let iter = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let n_live = ref 0 in
        for l = 0 to lanes - 1 do
          if live.(l) then
            if eval_bool ctx (base + l) f_cond then incr n_live else live.(l) <- false
        done;
        ctx.ev.Events.branches <- ctx.ev.Events.branches +. 1.0;
        charge ctx w a.Arch.cyc_branch;
        if !n_live = 0 then continue_ := false
        else begin
          (match (f_affine, ctx.opts.loop_cap) with
          | Some { C.af_bound; C.af_stride }, Some cap when !iter >= cap ->
              (* extrapolate: execute one representative iteration and scale
                 everything it recorded by the worst remaining trip count *)
              let remaining = ref 1 in
              for l = 0 to lanes - 1 do
                if live.(l) then begin
                  let v = Value.to_int (ctx.regs.(base + l).(f_var)) in
                  let b = eval_int ctx (base + l) af_bound in
                  let r = (b - v + af_stride - 1) / af_stride in
                  if r > !remaining then remaining := r
                end
              done;
              let snap = Events.snapshot ctx.ev in
              let cyc0 = ctx.wcycles.(w) in
              Array.iter (exec_warp ctx w live) f_body;
              let factor = float_of_int !remaining in
              Events.scale_from ctx.ev snap ~factor;
              ctx.wcycles.(w) <- cyc0 +. ((ctx.wcycles.(w) -. cyc0) *. factor);
              (* the skipped iterations would also have paid the loop
                 condition and iterator update *)
              let skipped = factor -. 1.0 in
              ctx.ev.Events.branches <- ctx.ev.Events.branches +. skipped;
              ctx.ev.Events.alu_insts <- ctx.ev.Events.alu_insts +. skipped;
              ctx.ev.Events.warp_insts <- ctx.ev.Events.warp_insts +. (2.0 *. skipped);
              charge ctx w (skipped *. (a.Arch.cyc_branch +. a.Arch.cyc_alu));
              (* jump the iterator past the bound so the loop exits *)
              for l = 0 to lanes - 1 do
                if live.(l) then begin
                  let v = Value.to_int (ctx.regs.(base + l).(f_var)) in
                  ctx.regs.(base + l).(f_var) <-
                    Value.VI (v + (af_stride * !remaining))
                end
              done
          | _ ->
              Array.iter (exec_warp ctx w live) f_body;
              for l = 0 to lanes - 1 do
                if live.(l) then
                  ctx.regs.(base + l).(f_var) <- eval ctx (base + l) f_step
              done;
              ctx.ev.Events.warp_insts <- ctx.ev.Events.warp_insts +. 1.0;
              ctx.ev.Events.alu_insts <- ctx.ev.Events.alu_insts +. 1.0;
              charge ctx w a.Arch.cyc_alu);
          incr iter;
          if !iter > 100_000_000 then
            sim_error "%s: loop exceeded 1e8 iterations" ctx.k.C.ck_name
        end
      done
  | C.CWhile { w_cond; w_body; w_sync } ->
      if w_sync then
        sim_error "%s: barrier inside thread-divergent loop" ctx.k.C.ck_name;
      let live = Array.copy mask in
      let continue_ = ref true in
      let iter = ref 0 in
      while !continue_ do
        let n_live = ref 0 in
        for l = 0 to lanes - 1 do
          if live.(l) then
            if eval_bool ctx (base + l) w_cond then incr n_live else live.(l) <- false
        done;
        ctx.ev.Events.branches <- ctx.ev.Events.branches +. 1.0;
        charge ctx w a.Arch.cyc_branch;
        if !n_live = 0 then continue_ := false
        else begin
          Array.iter (exec_warp ctx w live) w_body;
          incr iter;
          if !iter > 100_000_000 then
            sim_error "%s: while loop exceeded 1e8 iterations" ctx.k.C.ck_name
        end
      done

(* ------------------------------------------------------------------ *)
(* Block-wide execution (barrier-aware)                                *)
(* ------------------------------------------------------------------ *)

let full_mask = Array.make warp_lanes true

let barrier (ctx : block_ctx) : unit =
  let worst = Array.fold_left Float.max 0.0 ctx.wcycles in
  for w = 0 to ctx.nwarps - 1 do
    ctx.wcycles.(w) <- worst +. ctx.arch.Arch.cyc_sync
  done;
  ctx.ev.Events.syncs <- ctx.ev.Events.syncs +. float_of_int ctx.nwarps;
  ctx.ev.Events.warp_insts <-
    ctx.ev.Events.warp_insts +. float_of_int ctx.nwarps

let check_uniform_cond (ctx : block_ctx) (e : C.cexp) : bool =
  let v0 = eval_bool ctx 0 e in
  if ctx.opts.check_uniform then
    for t = 1 to ctx.nthreads - 1 do
      if eval_bool ctx t e <> v0 then
        sim_error "%s: non-uniform condition guards a barrier (thread %d disagrees)"
          ctx.k.C.ck_name t
    done;
  v0

let stmt_has_sync (s : C.cstmt) : bool =
  match s with
  | C.CSync -> true
  | C.CIf { if_sync; _ } -> if_sync
  | C.CFor { f_sync; _ } -> f_sync
  | C.CWhile { w_sync; _ } -> w_sync
  | C.CLet _ | C.CLoad _ | C.CStore _ | C.CVec_load _ | C.CAtomic _ | C.CShfl _ ->
      false

let rec exec_block_stmt (ctx : block_ctx) (s : C.cstmt) : unit =
  if not (stmt_has_sync s) then
    for w = 0 to ctx.nwarps - 1 do
      exec_warp ctx w full_mask s
    done
  else
    match s with
    | C.CSync -> barrier ctx
    | C.CIf { if_cond; if_then; if_else; _ } ->
        ctx.ev.Events.branches <- ctx.ev.Events.branches +. float_of_int ctx.nwarps;
        if check_uniform_cond ctx if_cond then Array.iter (exec_block_stmt ctx) if_then
        else Array.iter (exec_block_stmt ctx) if_else
    | C.CFor { f_var; f_init; f_cond; f_step; f_body; _ } ->
        for t = 0 to ctx.nthreads - 1 do
          ctx.regs.(t).(f_var) <- eval ctx t f_init
        done;
        let continue_ = ref true in
        while !continue_ do
          if check_uniform_cond ctx f_cond then begin
            Array.iter (exec_block_stmt ctx) f_body;
            for t = 0 to ctx.nthreads - 1 do
              ctx.regs.(t).(f_var) <- eval ctx t f_step
            done;
            ctx.ev.Events.branches <-
              ctx.ev.Events.branches +. float_of_int ctx.nwarps
          end
          else continue_ := false
        done
    | C.CWhile { w_cond; w_body; _ } ->
        let continue_ = ref true in
        while !continue_ do
          if check_uniform_cond ctx w_cond then
            Array.iter (exec_block_stmt ctx) w_body
          else continue_ := false
        done
    | C.CLet _ | C.CLoad _ | C.CStore _ | C.CVec_load _ | C.CAtomic _ | C.CShfl _ ->
        assert false

(* ------------------------------------------------------------------ *)
(* Bit-flip injection                                                  *)
(* ------------------------------------------------------------------ *)

(* Land a fault-plan bit flip in the live state of the current block:
   one cell of a shared tile, or one register slot of one thread. The
   raw selectors reduce modulo the actual population so any drawn flip
   maps to a real location. Global-memory flips are applied by the
   runner at launch boundaries, not here. *)
let apply_flip (ctx : block_ctx) (fl : Fault.flip) : unit =
  match fl.Fault.fl_space with
  | Fault.Global_mem -> ()
  | Fault.Shared_mem ->
      let total = Array.fold_left (fun acc a -> acc + Array.length a) 0 ctx.shared in
      if total > 0 then begin
        let idx = ref (fl.Fault.fl_target mod total) and slot = ref 0 in
        while !idx >= Array.length ctx.shared.(!slot) do
          idx := !idx - Array.length ctx.shared.(!slot);
          incr slot
        done;
        let a = ctx.shared.(!slot) in
        let ty = ctx.k.C.ck_shared.(!slot).Ir.sh_ty in
        a.(!idx) <- Fault.flip_value ty ~bit:fl.Fault.fl_bit a.(!idx)
      end
  | Fault.Register ->
      let nregs = Array.length ctx.regs.(0) in
      let t = fl.Fault.fl_target mod ctx.nthreads in
      let slot = fl.Fault.fl_target / ctx.nthreads mod nregs in
      ctx.regs.(t).(slot) <-
        (match ctx.regs.(t).(slot) with
        | Value.VF f -> Value.VF (Fault.flip_value Ir.F32 ~bit:fl.Fault.fl_bit f)
        | Value.VI i ->
            Value.of_float Ir.I32
              (Fault.flip_value Ir.I32 ~bit:fl.Fault.fl_bit (float_of_int i))
        | Value.VB b -> Value.VB (not b))

(* ------------------------------------------------------------------ *)
(* Kernel launch                                                       *)
(* ------------------------------------------------------------------ *)

type launch_result = {
  lr_grid : int;
  lr_block : int;
  lr_shared_bytes : int;  (** per-block shared memory footprint *)
  lr_events : Events.t;
  lr_block_cp : float;  (** mean per-block critical path, cycles *)
}

(** Execute a compiled kernel on [arch]. [globals] binds each kernel array
    slot to a buffer; [params] are the scalar arguments in declaration
    order. Returns per-launch events and the mean per-block critical
    path. *)
let run_kernel ?(flip : Fault.flip option) ~(arch : Arch.t) ~(opts : options)
    (k : C.t) ~(grid : int) ~(block : int) ~(shared_elems : int)
    ~(globals : buffer array) ~(params : Value.t array) : launch_result =
  if arch.Arch.warp_size <> warp_lanes then
    sim_error "architecture warp size %d unsupported (expected 32)"
      arch.Arch.warp_size;
  if grid < 1 then sim_error "%s: empty grid" k.C.ck_name;
  if block < 1 || block > arch.Arch.max_threads_per_block then
    sim_error "%s: block size %d out of range [1, %d]" k.C.ck_name block
      arch.Arch.max_threads_per_block;
  if Array.length globals <> Array.length k.C.ck_arrays then
    sim_error "%s: expected %d array bindings, got %d" k.C.ck_name
      (Array.length k.C.ck_arrays) (Array.length globals);
  if Array.length params <> Array.length k.C.ck_params then
    sim_error "%s: expected %d scalar parameters, got %d" k.C.ck_name
      (Array.length k.C.ck_params) (Array.length params);
  let shared_sizes =
    Array.map
      (fun (d : Ir.shared_decl) ->
        match d.Ir.sh_size with
        | Ir.Static_size n -> n
        | Ir.Dynamic_size -> shared_elems)
      k.C.ck_shared
  in
  let shared_bytes = 4 * Array.fold_left ( + ) 0 shared_sizes in
  if shared_bytes > arch.Arch.shared_mem_per_block then
    sim_error "%s: shared memory footprint %dB exceeds per-block limit %dB"
      k.C.ck_name shared_bytes arch.Arch.shared_mem_per_block;
  let ev = Events.create () in
  let nwarps = (block + warp_lanes - 1) / warp_lanes in
  let ctx =
    {
      arch;
      opts;
      ev;
      k;
      params;
      globals;
      shared = Array.map (fun n -> Array.make (max n 1) 0.0) shared_sizes;
      regs = Array.init block (fun _ -> Array.make (max k.C.ck_nregs 1) Value.zero);
      wcycles = Array.make nwarps 0.0;
      nthreads = block;
      nwarps;
      block_idx = 0;
      grid_dim = grid;
    }
  in
  let simulate =
    match opts.max_blocks with None -> grid | Some cap -> min grid cap
  in
  (* sample evenly across the grid so that edge blocks are represented *)
  let block_ids =
    if simulate = grid then Array.init grid (fun i -> i)
    else
      Array.init simulate (fun i ->
          let id = i * grid / simulate in
          if i = simulate - 1 then grid - 1 else id)
  in
  let cp_total = ref 0.0 in
  (* a shared/register flip lands in one simulated block, after one
     top-level statement boundary of its body — both chosen by the flip's
     site selector *)
  let nstmts = Array.length k.C.ck_body in
  let flip_block, flip_stmt =
    match flip with
    | Some fl when fl.Fault.fl_space <> Fault.Global_mem && nstmts > 0 ->
        (fl.Fault.fl_site mod simulate, fl.Fault.fl_site mod nstmts)
    | _ -> (-1, -1)
  in
  (try
     Array.iteri
       (fun pos b ->
         ctx.block_idx <- b;
         Array.iter (fun sh -> Array.fill sh 0 (Array.length sh) 0.0) ctx.shared;
         Array.iter
           (fun r -> Array.fill r 0 (Array.length r) Value.zero)
           ctx.regs;
         Array.fill ctx.wcycles 0 nwarps 0.0;
         if pos = flip_block then
           Array.iteri
             (fun i s ->
               exec_block_stmt ctx s;
               if i = flip_stmt then apply_flip ctx (Option.get flip))
             k.C.ck_body
         else Array.iter (exec_block_stmt ctx) k.C.ck_body;
         cp_total := !cp_total +. Array.fold_left Float.max 0.0 ctx.wcycles)
       block_ids
   with Value.Trap msg -> sim_error "%s: %s" k.C.ck_name msg);
  ev.Events.launched_blocks <- grid;
  ev.Events.simulated_blocks <- simulate;
  if simulate < grid then
    Events.scale_all ev ~factor:(float_of_int grid /. float_of_int simulate);
  {
    lr_grid = grid;
    lr_block = block;
    lr_shared_bytes = shared_bytes;
    lr_events = ev;
    lr_block_cp = (if simulate = 0 then 0.0 else !cp_total /. float_of_int simulate);
  }
