(** Program runner: executes a device-IR host program (buffers + launch
    sequence) on a simulated architecture and aggregates per-launch costs
    into a wall-clock estimate.

    In {!Interp.exact} mode the returned [result] is the true value the
    simulated kernels computed; in {!Interp.approximate} mode only
    [time_us] is meaningful. *)

type outcome = {
  result : float;  (** element 0 of the program's result buffer *)
  time_us : float;
  exact : bool;  (** whether [result] is trustworthy (no sampling) *)
  launch_costs : Cost.t list;
  launch_results : Interp.launch_result list;
}

(** Program input: a dense array, or a synthetic buffer of logical size
    [n] repeating [pattern] (power-of-two length) for paper-scale timing
    runs. *)
type input = Dense of float array | Synthetic of { n : int; pattern : float array }

val input_size : input -> int

type compiled_program = {
  cp_program : Device_ir.Ir.program;
  cp_kernels : (string * Compiled.t) list;
}

(** Validate (raising {!Device_ir.Validate.Invalid} on failure) and compile
    all kernels once; the result can be run many times with different
    inputs, tunables and architectures. *)
val compile : Device_ir.Ir.program -> compiled_program

(** First candidate of every tunable. *)
val default_tunables : Device_ir.Ir.program -> (string * int) list

(** [fault] injects deterministic faults into this run (see {!Fault}):
    an injected transient fault raises {!Interp.Sim_error}, an injected
    timeout raises {!Fault.Injected}, a stall multiplies [time_us] by the
    plan's stall factor and a corrupt outcome carries a NaN [result].
    Independently, the plan's per-space bit-flip rates may arm a silent
    {!Fault.flip} that lands mid-run in global, shared or register state;
    a flipped outcome is indistinguishable from a clean one ([exact] is
    unchanged) — detecting it is the runtime guard's job.
    [fault_version] labels the roll (per-version fault rates key on it;
    defaults to the program's first kernel name). *)
val run_compiled :
  ?opts:Interp.options ->
  ?fault:Fault.t ->
  ?fault_version:string ->
  arch:Arch.t ->
  ?tunables:(string * int) list ->
  input:input ->
  compiled_program ->
  outcome

(** One-shot convenience wrapper around {!compile} and {!run_compiled}. *)
val run :
  ?opts:Interp.options ->
  ?fault:Fault.t ->
  ?fault_version:string ->
  arch:Arch.t ->
  ?tunables:(string * int) list ->
  input:input ->
  Device_ir.Ir.program ->
  outcome
