(** Declarative service-level objectives evaluated as multi-window burn
    rates on the virtual clock.

    An objective's error budget is [1 - target]; a window's burn rate
    is its bad fraction divided by that budget. The multi-window rule
    fires only when BOTH the fast window (default 1 virtual minute)
    and the slow window (default 1 virtual hour) exceed the firing
    threshold, and resolves with hysteresis when both fall under the
    strictly lower resolve threshold. A zero-budget objective
    ([target >= 1.0], e.g. "SDC escapes = 0") burns infinitely on any
    bad event.

    Observations carry explicit virtual timestamps into fixed-size
    bucket rings; every evaluation is a pure function of the
    observation sequence, so replays are deterministic. Before one
    window's worth of virtual time has elapsed both windows see the
    same history, so short-horizon replays can still fire. *)

type objective = private {
  o_name : string;
  o_description : string;
  o_target : float;  (** required good fraction; >= 1.0 means zero budget *)
  o_fast_us : float;
  o_slow_us : float;
  o_fire_burn : float;
  o_resolve_burn : float;
}

(** @raise Invalid_argument on an empty name, a non-positive target,
    [fast_us <= 0], [slow_us < fast_us] or
    [resolve_burn >= fire_burn]. *)
val objective :
  ?description:string ->
  ?fast_us:float ->
  ?slow_us:float ->
  ?fire_burn:float ->
  ?resolve_burn:float ->
  target:float ->
  string ->
  objective

type t

val create : objective -> t
val objective_of : t -> objective
val name : t -> string

(** Record one good/bad observation at virtual time [now_us]. *)
val observe : t -> now_us:float -> good:bool -> unit

type burn = {
  br_fast : float;  (** fast-window burn rate; [infinity] on a blown zero budget *)
  br_slow : float;
  br_fast_bad : int;  (** bad observations inside the fast window *)
  br_slow_bad : int;
}

val burn_rates : t -> now_us:float -> burn

type event = Fired of burn | Resolved of burn

(** Hysteretic alert step: transition into firing when both windows
    burn at or above [fire_burn] (and at least one bad observation is
    in the fast window), back out when both fall below
    [resolve_burn]. *)
val evaluate : t -> now_us:float -> event option

val firing : t -> bool

(** Lifetime count of transitions into firing. *)
val fired_count : t -> int

(** Virtual time of the last firing/resolve transition (0 before any). *)
val last_change_us : t -> float

(** Current state as a JSON object (name, target, firing, burns) —
    the monitor dashboard's and incident bundle's SLO table row. *)
val state_json : t -> now_us:float -> Json.t
