(* Span-based tracing with a ring-buffered in-memory sink.

   The service opens one root span per request under a fresh trace id
   ([with_request]); every nested operation — plan-cache lookup,
   planning, tuning sweep, each compile, each simulated kernel run,
   retries, fallback-rung descents, SDC re-executions, witness checks —
   wraps itself in [span], and instantaneous facts (a retry fired, a
   rung was quarantined) are [mark]ed. Events land in a fixed-capacity
   ring in strict chronological order; when tracing is disabled every
   entry point is a single load-and-branch, so the instrumentation can
   stay in the hot paths permanently.

   Export is Chrome trace_event JSON (B/E duration events plus "i"
   instants), loadable in Perfetto / chrome://tracing. The trace id is
   the Chrome [tid], so each request renders as its own track. The ring
   may have overwritten the B of a still-buffered E (oldest events go
   first): the exporter drops such orphan Es and synthesizes Es for
   spans still open at export time, so the emitted file is always
   balanced and monotone — which the CI validator re-checks from the
   file alone. *)

type ph = B | E | I

type event = {
  ev_ph : ph;
  ev_name : string;
  ev_tid : int;
  ev_ts : float;  (** microseconds *)
  ev_attrs : (string * string) list;
}

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

let enabled_flag = ref false
let enabled () : bool = !enabled_flag

let default_capacity = 1 lsl 18

type ring = {
  mutable buf : event option array;
  mutable head : int;  (** next write position *)
  mutable size : int;
  mutable dropped : int;  (** events overwritten since the last [clear] *)
}

let ring =
  { buf = Array.make default_capacity None; head = 0; size = 0; dropped = 0 }

let tid_counter = ref 0
let cur_tid = ref 0
let current_tid () : int = !cur_tid

(* The clock is injectable (golden tests run on a fake one); recorded
   timestamps are clamped monotone so a stepping wall clock cannot
   produce an invalid trace, and rebased to the first recorded event so
   a trace's timestamps stay small — epoch microseconds (~1.8e15) would
   shed sub-millisecond precision through a double and its JSON
   rendering. *)
let clock = ref (fun () -> Unix.gettimeofday () *. 1e6)
let last_ts = ref neg_infinity
let base_ts = ref None

let set_clock (c : unit -> float) : unit =
  clock := c;
  last_ts := neg_infinity;
  base_ts := None

let now () : float =
  let raw = !clock () in
  let base =
    match !base_ts with
    | Some b -> b
    | None ->
        base_ts := Some raw;
        raw
  in
  let t = raw -. base in
  let t = if t > !last_ts then t else !last_ts in
  last_ts := t;
  t

let clear () : unit =
  Array.fill ring.buf 0 (Array.length ring.buf) None;
  ring.head <- 0;
  ring.size <- 0;
  ring.dropped <- 0;
  tid_counter := 0;
  cur_tid := 0;
  last_ts := neg_infinity;
  base_ts := None

let set_capacity (n : int) : unit =
  if n < 1 then invalid_arg "Obs.Trace.set_capacity: capacity must be positive";
  ring.buf <- Array.make n None;
  clear ()

let capacity () : int = Array.length ring.buf
let dropped () : int = ring.dropped

let set_enabled (b : bool) : unit = enabled_flag := b

let push (ev : event) : unit =
  let cap = Array.length ring.buf in
  if ring.buf.(ring.head) <> None then ring.dropped <- ring.dropped + 1;
  ring.buf.(ring.head) <- Some ev;
  ring.head <- (ring.head + 1) mod cap;
  if ring.size < cap then ring.size <- ring.size + 1

(** Buffered events, oldest first (chronological by construction). *)
let events () : event list =
  let cap = Array.length ring.buf in
  let start = (ring.head - ring.size + cap) mod cap in
  List.init ring.size (fun i ->
      match ring.buf.((start + i) mod cap) with
      | Some ev -> ev
      | None -> assert false)

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let span ?(attrs : (string * string) list = []) ~(name : string)
    (f : unit -> 'a) : 'a =
  if not !enabled_flag then f ()
  else begin
    let tid = !cur_tid in
    push { ev_ph = B; ev_name = name; ev_tid = tid; ev_ts = now (); ev_attrs = attrs };
    Fun.protect
      ~finally:(fun () ->
        push { ev_ph = E; ev_name = name; ev_tid = tid; ev_ts = now (); ev_attrs = [] })
      f
  end

let mark ?(attrs : (string * string) list = []) (name : string) : unit =
  if !enabled_flag then
    push { ev_ph = I; ev_name = name; ev_tid = !cur_tid; ev_ts = now (); ev_attrs = attrs }

let fresh_tid () : int =
  incr tid_counter;
  !tid_counter

let with_request ?(attrs : (string * string) list = []) ~(name : string)
    (f : unit -> 'a) : 'a =
  if not !enabled_flag then f ()
  else begin
    let parent = !cur_tid in
    cur_tid := fresh_tid ();
    Fun.protect
      ~finally:(fun () -> cur_tid := parent)
      (fun () -> span ~attrs ~name f)
  end

(* ------------------------------------------------------------------ *)
(* Matching: balanced view of the ring                                 *)
(* ------------------------------------------------------------------ *)

(* Pair up B/E events per trace id. Orphan Es (their B was overwritten)
   are dropped; spans still open when this runs get a synthetic E at the
   newest buffered timestamp. The result is a balanced, chronological
   event list. *)
let balanced_events () : event list =
  let evs = Array.of_list (events ()) in
  let n = Array.length evs in
  let keep = Array.make n true in
  let stacks : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let stack_of tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks tid s;
        s
  in
  Array.iteri
    (fun i ev ->
      match ev.ev_ph with
      | I -> ()
      | B -> (
          let s = stack_of ev.ev_tid in
          s := i :: !s)
      | E -> (
          let s = stack_of ev.ev_tid in
          match !s with
          | top :: rest -> ignore top; s := rest
          | [] -> keep.(i) <- false))
    evs;
  let tail = ref [] in
  let close_ts = if n = 0 then 0.0 else evs.(n - 1).ev_ts in
  (* synthesize closes innermost-first per tid; cross-tid order does not
     matter for balance, and timestamps tie at the newest event *)
  Hashtbl.iter
    (fun _tid s ->
      List.iter
        (fun i ->
          let b = evs.(i) in
          tail :=
            { ev_ph = E; ev_name = b.ev_name; ev_tid = b.ev_tid; ev_ts = close_ts;
              ev_attrs = [] }
            :: !tail)
        !s)
    stacks;
  let kept = ref [] in
  for i = n - 1 downto 0 do
    if keep.(i) then kept := evs.(i) :: !kept
  done;
  !kept @ List.rev !tail

(* ------------------------------------------------------------------ *)
(* Span trees (for tests and the profiler)                             *)
(* ------------------------------------------------------------------ *)

type node = {
  n_name : string;
  n_tid : int;
  n_start_us : float;
  n_dur_us : float;
  n_attrs : (string * string) list;
  n_marks : (string * (string * string) list) list;
      (** instants recorded directly under this span, oldest first *)
  n_children : node list;
}

let forest () : node list =
  (* per-tid stacks of open nodes; children accumulate reversed *)
  let open_stacks :
      (int, (event * node list ref * (string * (string * string) list) list ref) list ref)
      Hashtbl.t =
    Hashtbl.create 16
  in
  let stack_of tid =
    match Hashtbl.find_opt open_stacks tid with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add open_stacks tid s;
        s
  in
  let roots = ref [] in
  List.iter
    (fun ev ->
      let s = stack_of ev.ev_tid in
      match ev.ev_ph with
      | B -> s := (ev, ref [], ref []) :: !s
      | I -> (
          match !s with
          | (_, _, marks) :: _ -> marks := (ev.ev_name, ev.ev_attrs) :: !marks
          | [] -> ())
      | E -> (
          match !s with
          | (b, children, marks) :: rest ->
              s := rest;
              let node =
                {
                  n_name = b.ev_name;
                  n_tid = b.ev_tid;
                  n_start_us = b.ev_ts;
                  n_dur_us = ev.ev_ts -. b.ev_ts;
                  n_attrs = b.ev_attrs;
                  n_marks = List.rev !marks;
                  n_children = List.rev !children;
                }
              in
              (match !s with
              | (_, parent_children, _) :: _ ->
                  parent_children := node :: !parent_children
              | [] -> roots := node :: !roots)
          | [] -> ()))
    (balanced_events ());
  List.rev !roots

let rec fold_nodes (f : 'a -> node -> 'a) (acc : 'a) (nodes : node list) : 'a =
  List.fold_left (fun acc n -> fold_nodes f (f acc n) n.n_children) acc nodes

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                           *)
(* ------------------------------------------------------------------ *)

let pid = 1

let event_to_json (ev : event) : Json.t =
  let base =
    [
      ("name", Json.Str ev.ev_name);
      ("cat", Json.Str "tangram");
      ("ph", Json.Str (match ev.ev_ph with B -> "B" | E -> "E" | I -> "i"));
      ("ts", Json.Num ev.ev_ts);
      ("pid", Json.Num (float_of_int pid));
      ("tid", Json.Num (float_of_int ev.ev_tid));
    ]
  in
  let base =
    match ev.ev_ph with I -> base @ [ ("s", Json.Str "t") ] | B | E -> base
  in
  let base =
    match ev.ev_attrs with
    | [] -> base
    | attrs ->
        base @ [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) attrs)) ]
  in
  Json.Obj base

let to_chrome_json () : string =
  (* a lossless trace emits exactly the historical two-key document (the
     golden file pins those bytes); only a ring that actually overwrote
     events grows the droppedEvents marker, which [validate_chrome]
     ignores and [chrome_dropped] reads back *)
  let base =
    [
      ("traceEvents", Json.Arr (List.map event_to_json (balanced_events ())));
      ("displayTimeUnit", Json.Str "ms");
    ]
  in
  let doc =
    if ring.dropped > 0 then
      base @ [ ("droppedEvents", Json.Num (float_of_int ring.dropped)) ]
    else base
  in
  Json.to_string (Json.Obj doc)

(* events the exporting ring had already overwritten, recorded in the
   document itself; 0 for a complete trace (or a pre-marker file) *)
let chrome_dropped (src : string) : int =
  match Json.of_string src with
  | Error _ -> 0
  | Ok doc -> (
      match Option.bind (Json.member "droppedEvents" doc) Json.to_float with
      | Some n when n > 0.0 -> int_of_float n
      | _ -> 0)

let chrome_dropped_file (path : string) : int =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let src = really_input_string ic len in
    close_in ic;
    src
  with
  | src -> chrome_dropped src
  | exception Sys_error _ -> 0

let save (path : string) : unit =
  let oc = open_out path in
  output_string oc (to_chrome_json ());
  output_char oc '\n';
  close_out oc

(* ------------------------------------------------------------------ *)
(* Validation (the CI contract)                                        *)
(* ------------------------------------------------------------------ *)

(* Check a Chrome trace-event document the way the CI job does: the
   [traceEvents] array exists; every event carries ph/ts/pid/tid (and a
   name on B and i); timestamps never decrease in file order; and B/E
   events nest and balance per (pid, tid), names matching LIFO. Returns
   the event count. *)
let validate_chrome (src : string) : (int, string) result =
  match Json.of_string src with
  | Error msg -> Error ("not valid JSON: " ^ msg)
  | Ok doc -> (
      match Option.bind (Json.member "traceEvents" doc) Json.to_list with
      | None -> Error "missing traceEvents array"
      | Some evs -> (
          let stacks : (int * int, string list ref) Hashtbl.t =
            Hashtbl.create 16
          in
          let last = ref neg_infinity in
          let check i ev =
            let str name = Option.bind (Json.member name ev) Json.to_str in
            let num name = Option.bind (Json.member name ev) Json.to_float in
            let fail fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "event %d: %s" i m)) fmt in
            match (str "ph", num "ts", num "pid", num "tid") with
            | None, _, _, _ -> fail "missing ph"
            | _, None, _, _ -> fail "missing ts"
            | _, _, None, _ -> fail "missing pid"
            | _, _, _, None -> fail "missing tid"
            | Some ph, Some ts, Some pid, Some tid -> (
                if ts < !last then fail "timestamp %g goes backwards (last %g)" ts !last
                else begin
                  last := ts;
                  let key = (int_of_float pid, int_of_float tid) in
                  let stack =
                    match Hashtbl.find_opt stacks key with
                    | Some s -> s
                    | None ->
                        let s = ref [] in
                        Hashtbl.add stacks key s;
                        s
                  in
                  match ph with
                  | "B" -> (
                      match str "name" with
                      | None -> fail "B event without a name"
                      | Some name ->
                          stack := name :: !stack;
                          Ok ())
                  | "E" -> (
                      match !stack with
                      | [] -> fail "E event with no open B on tid %g" tid
                      | _ :: rest ->
                          stack := rest;
                          Ok ())
                  | "i" | "I" ->
                      if str "name" = None then fail "instant event without a name"
                      else Ok ()
                  | other -> fail "unsupported phase %S" other
                end)
          in
          let rec go i = function
            | [] -> Ok ()
            | ev :: rest -> (
                match check i ev with Ok () -> go (i + 1) rest | Error _ as e -> e)
          in
          match go 0 evs with
          | Error _ as e -> e
          | Ok () ->
              let unbalanced = ref None in
              Hashtbl.iter
                (fun (pid, tid) s ->
                  match !s with
                  | [] -> ()
                  | name :: _ when !unbalanced = None ->
                      unbalanced :=
                        Some
                          (Printf.sprintf
                             "unclosed span %S on pid %d tid %d" name pid tid)
                  | _ -> ())
                stacks;
              (match !unbalanced with
              | Some msg -> Error msg
              | None -> Ok (List.length evs))))

let validate_chrome_file (path : string) : (int, string) result =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let src = really_input_string ic len in
    close_in ic;
    src
  with
  | src -> validate_chrome src
  | exception Sys_error msg -> Error msg
