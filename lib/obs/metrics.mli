(** Windowed time-series instruments on the virtual clock.

    A registry owns counters, gauges and HDR-style log-bucketed
    histograms keyed by (name, label set), plus a fixed-capacity ring of
    snapshots. Recording calls take no timestamp: windows exist because
    a driver calls {!snapshot} [~now_us] at the virtual times it cares
    about, and {!windows} diffs adjacent snapshots into per-window
    deltas and quantiles — deterministic across machines by
    construction.

    A disabled registry costs one load-and-branch per recording call
    ([bench obs] enforces the <1% tax), so instrumentation stays in the
    hot paths permanently. Registries {!merge} by addition, so the
    ROADMAP's per-domain sharding item can aggregate one registry per
    domain into a fleet-wide view. *)

type t

type kind = Counter | Gauge | Histogram

val kind_name : kind -> string

(** Typed instrument handles (all registry-backed; recording through a
    handle of a disabled registry is a no-op). *)
type counter

type gauge
type histogram

(** [snapshots] is the ring capacity (default 64, minimum 2).
    @raise Invalid_argument on a capacity below 2. *)
val create : ?snapshots:int -> ?enabled:bool -> unit -> t

val set_enabled : t -> bool -> unit
val enabled : t -> bool

(** {1 Registration}

    Re-registering the same (name, labels) returns the existing
    instrument. Metric and label names must satisfy the Prometheus
    grammar ([[a-zA-Z_:][a-zA-Z0-9_:]*] and [[a-zA-Z_][a-zA-Z0-9_]*]).
    @raise Invalid_argument on an illegal name or a kind clash. *)

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge
val histogram : t -> ?help:string -> ?labels:(string * string) list -> string -> histogram

(** {1 Recording} *)

(** Add [by] (default 1; negative increments are ignored — counters are
    monotone). *)
val inc : ?by:float -> counter -> unit

val set : gauge -> float -> unit

(** Record one sample into the log-bucketed histogram (8 sub-buckets
    per octave: quantile relative error is bounded by [2^(1/8) - 1],
    about 9%). *)
val observe : histogram -> float -> unit

(** {1 Point-in-time reading} *)

val counter_value : counter -> float
val gauge_value : gauge -> float
val hist_count : histogram -> int
val hist_sum : histogram -> float

(** Nearest-rank percentile ([p] in 0..100) over the bucket counts;
    0 when empty. *)
val quantile : histogram -> float -> float

(** {1 Snapshots and windows} *)

(** Capture every instrument's current value into the ring at virtual
    time [now_us]. A no-op on a disabled registry. *)
val snapshot : t -> now_us:float -> unit

val n_snapshots : t -> int

type window_row = {
  wr_name : string;
  wr_labels : (string * string) list;
  wr_kind : kind;
  wr_value : float;
      (** counter delta over the window / gauge value at window end /
          histogram count delta *)
  wr_sum : float;  (** histogram sum delta, 0 otherwise *)
  wr_p50 : float;  (** histogram quantiles over the window's samples *)
  wr_p95 : float;
}

type window = {
  w_from_us : float;
  w_to_us : float;
  w_rows : window_row list;
}

(** Adjacent-snapshot diffs, oldest window first ([n_snapshots - 1]
    windows). Instruments registered mid-ring diff against a zero
    base. *)
val windows : t -> window list

(** {1 Merging} *)

(** Fold [src] into [into]: counters and histogram buckets add, gauges
    add (shard-local depths sum to a fleet depth). [src] is unchanged;
    snapshot rings do not merge. *)
val merge : into:t -> t -> unit

(** {1 Prometheus text exposition}

    HELP/TYPE headers, escaped label values, histograms as cumulative
    [_bucket{le=...}] / [_sum] / [_count] families. With [windows]
    (default true) each ring window is also emitted as
    [<name>_window*{w=...,from_us=...,to_us=...}] gauge families. *)
val to_prometheus : ?windows:bool -> t -> string

(** {1 Lexical helpers (shared with tests)} *)

val valid_metric_name : string -> bool
val valid_label_name : string -> bool
val escape_label_value : string -> string
