(* Windowed time-series instruments on the virtual clock.

   A registry owns a flat list of instruments — counters, gauges and
   HDR-style log-bucketed histograms, each keyed by (name, label set) —
   plus a fixed-capacity ring of snapshots. Recording never touches a
   clock: windows exist only because somebody calls [snapshot ~now_us]
   at the virtual times they care about, and [windows] then diffs
   adjacent snapshots into per-window deltas and quantiles. That keeps
   every reading a pure function of (recorded values, snapshot times) —
   deterministic across machines, which is what lets CI assert on the
   series.

   Like [Trace], a disabled registry costs one load-and-branch per
   recording call, so the instrumentation can live in the hot paths
   permanently ([bench obs] prices and enforces this).

   Registries merge ([merge]): counters, histogram buckets and gauges
   add, so the planned per-domain sharding item can keep one registry
   per domain and fold them into a fleet-wide view at report time. *)

type kind = Counter | Gauge | Histogram

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

(* ------------------------------------------------------------------ *)
(* Prometheus lexical rules                                            *)
(* ------------------------------------------------------------------ *)

let valid_metric_name (s : string) : bool =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       s

let valid_label_name (s : string) : bool =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

(* label-value body escaping per the text exposition format: backslash,
   double quote and newline *)
let escape_label_value (s : string) : string =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* HDR-style log buckets                                               *)
(* ------------------------------------------------------------------ *)

(* 8 sub-buckets per octave over (1, 2^60]: bucket 0 holds values <= 1,
   bucket i has upper bound 2^(i/8). Quantiles read the crossing
   bucket's upper bound, so the relative error is bounded by
   2^(1/8) - 1 (~9%) regardless of the value's magnitude — the HDR
   trade: fixed memory, bounded relative error, mergeable by plain
   bucket addition. *)
let sub_buckets = 8
let hist_buckets = (60 * sub_buckets) + 1

let bucket_of (v : float) : int =
  if not (v > 1.0) then 0
  else
    let e = Float.log2 v in
    max 1
      (min (hist_buckets - 1)
         (int_of_float (Float.ceil (float_of_int sub_buckets *. e))))

let bucket_upper (i : int) : float =
  if i = 0 then 1.0 else Float.exp2 (float_of_int i /. float_of_int sub_buckets)

(* ------------------------------------------------------------------ *)
(* Instruments                                                         *)
(* ------------------------------------------------------------------ *)

type hist_state = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_max : float;
  h_buckets : int array;
}

type state =
  | Scounter of { mutable c : float }
  | Sgauge of { mutable g : float }
  | Shist of hist_state

type value =
  | Vcounter of float
  | Vgauge of float
  | Vhist of { vh_count : int; vh_sum : float; vh_buckets : int array }

type instrument = {
  i_name : string;
  i_help : string;
  i_labels : (string * string) list;
  i_kind : kind;
  i_state : state;
  i_reg : t;
}

and snapshot = {
  sn_now_us : float;
  sn_rows : (instrument * value) list;  (** registration order *)
}

and t = {
  mutable enabled : bool;
  mutable insts : instrument list;  (** newest first *)
  snaps : snapshot option array;
  mutable snap_head : int;  (** next write position *)
  mutable snap_size : int;
}

type counter = instrument
type gauge = instrument
type histogram = instrument

let default_snapshots = 64

let create ?(snapshots = default_snapshots) ?(enabled = true) () : t =
  if snapshots < 2 then
    invalid_arg "Metrics.create: the snapshot ring needs at least 2 slots";
  {
    enabled;
    insts = [];
    snaps = Array.make snapshots None;
    snap_head = 0;
    snap_size = 0;
  }

let set_enabled (t : t) (b : bool) : unit = t.enabled <- b
let enabled (t : t) : bool = t.enabled

let instruments (t : t) : instrument list = List.rev t.insts

let register (t : t) (kind : kind) ~(help : string)
    ~(labels : (string * string) list) (name : string) : instrument =
  if not (valid_metric_name name) then
    invalid_arg (Printf.sprintf "Metrics: illegal metric name %S" name);
  List.iter
    (fun (k, _) ->
      if not (valid_label_name k) then
        invalid_arg (Printf.sprintf "Metrics: illegal label name %S" k))
    labels;
  let labels = List.sort (fun (a, _) (b, _) -> compare a b) labels in
  match
    List.find_opt
      (fun i -> i.i_name = name && i.i_labels = labels)
      t.insts
  with
  | Some i ->
      if i.i_kind <> kind then
        invalid_arg
          (Printf.sprintf "Metrics: %s already registered as a %s" name
             (kind_name i.i_kind));
      i
  | None ->
      let state =
        match kind with
        | Counter -> Scounter { c = 0.0 }
        | Gauge -> Sgauge { g = 0.0 }
        | Histogram ->
            Shist
              {
                h_count = 0;
                h_sum = 0.0;
                h_max = 0.0;
                h_buckets = Array.make hist_buckets 0;
              }
      in
      let i = { i_name = name; i_help = help; i_labels = labels; i_kind = kind;
                i_state = state; i_reg = t } in
      t.insts <- i :: t.insts;
      i

let counter (t : t) ?(help = "") ?(labels = []) (name : string) : counter =
  register t Counter ~help ~labels name

let gauge (t : t) ?(help = "") ?(labels = []) (name : string) : gauge =
  register t Gauge ~help ~labels name

let histogram (t : t) ?(help = "") ?(labels = []) (name : string) : histogram =
  register t Histogram ~help ~labels name

(* ------------------------------------------------------------------ *)
(* Recording (one load-and-branch when the registry is disabled)       *)
(* ------------------------------------------------------------------ *)

let inc ?(by = 1.0) (c : counter) : unit =
  if c.i_reg.enabled then
    match c.i_state with
    | Scounter s -> if by > 0.0 then s.c <- s.c +. by
    | Sgauge _ | Shist _ -> assert false

let set (g : gauge) (v : float) : unit =
  if g.i_reg.enabled then
    match g.i_state with
    | Sgauge s -> s.g <- v
    | Scounter _ | Shist _ -> assert false

let observe (h : histogram) (v : float) : unit =
  if h.i_reg.enabled then
    match h.i_state with
    | Shist s ->
        s.h_count <- s.h_count + 1;
        s.h_sum <- s.h_sum +. v;
        if v > s.h_max then s.h_max <- v;
        let b = s.h_buckets in
        let i = bucket_of v in
        b.(i) <- b.(i) + 1
    | Scounter _ | Sgauge _ -> assert false

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let counter_value (c : counter) : float =
  match c.i_state with Scounter s -> s.c | _ -> assert false

let gauge_value (g : gauge) : float =
  match g.i_state with Sgauge s -> s.g | _ -> assert false

let hist_count (h : histogram) : int =
  match h.i_state with Shist s -> s.h_count | _ -> assert false

let hist_sum (h : histogram) : float =
  match h.i_state with Shist s -> s.h_sum | _ -> assert false

(* nearest-rank percentile over bucket counts, reading the crossing
   bucket's upper bound; a known true maximum caps the answer (the top
   bucket's bound can overshoot it) *)
let quantile_of_buckets ?(maxv = infinity) (buckets : int array) (count : int)
    (p : float) : float =
  if count = 0 then 0.0
  else begin
    let rank =
      max 1
        (min count (int_of_float (Float.ceil (p /. 100.0 *. float_of_int count))))
    in
    let rec go i acc =
      if i >= Array.length buckets then
        if maxv < infinity then maxv else bucket_upper (Array.length buckets - 1)
      else
        let acc = acc + buckets.(i) in
        if acc >= rank then Float.min (bucket_upper i) maxv
        else go (i + 1) acc
    in
    go 0 0
  end

let quantile (h : histogram) (p : float) : float =
  match h.i_state with
  | Shist s -> quantile_of_buckets ~maxv:s.h_max s.h_buckets s.h_count p
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Snapshots and windows                                               *)
(* ------------------------------------------------------------------ *)

let value_of (i : instrument) : value =
  match i.i_state with
  | Scounter s -> Vcounter s.c
  | Sgauge s -> Vgauge s.g
  | Shist s ->
      Vhist
        { vh_count = s.h_count; vh_sum = s.h_sum;
          vh_buckets = Array.copy s.h_buckets }

let snapshot (t : t) ~(now_us : float) : unit =
  if t.enabled then begin
    let snap =
      { sn_now_us = now_us;
        sn_rows = List.rev_map (fun i -> (i, value_of i)) t.insts }
    in
    let cap = Array.length t.snaps in
    t.snaps.(t.snap_head) <- Some snap;
    t.snap_head <- (t.snap_head + 1) mod cap;
    if t.snap_size < cap then t.snap_size <- t.snap_size + 1
  end

let snapshots (t : t) : snapshot list =
  let cap = Array.length t.snaps in
  let start = (t.snap_head - t.snap_size + cap) mod cap in
  List.init t.snap_size (fun k ->
      match t.snaps.((start + k) mod cap) with
      | Some s -> s
      | None -> assert false)

let n_snapshots (t : t) : int = t.snap_size

type window_row = {
  wr_name : string;
  wr_labels : (string * string) list;
  wr_kind : kind;
  wr_value : float;
      (** counter delta over the window / gauge value at window end /
          histogram count delta *)
  wr_sum : float;  (** histogram sum delta, 0 otherwise *)
  wr_p50 : float;  (** histogram quantiles over the window's samples *)
  wr_p95 : float;
}

type window = {
  w_from_us : float;
  w_to_us : float;
  w_rows : window_row list;
}

(* diff one snapshot pair; instruments born after the older snapshot
   diff against a zero base *)
let diff_snaps (a : snapshot) (b : snapshot) : window =
  let base i =
    List.find_map (fun (j, v) -> if j == i then Some v else None) a.sn_rows
  in
  let row (i, v) =
    match (v, base i) with
    | Vcounter now, prev ->
        let was = match prev with Some (Vcounter w) -> w | _ -> 0.0 in
        Some
          { wr_name = i.i_name; wr_labels = i.i_labels; wr_kind = Counter;
            wr_value = now -. was; wr_sum = 0.0; wr_p50 = 0.0; wr_p95 = 0.0 }
    | Vgauge now, _ ->
        Some
          { wr_name = i.i_name; wr_labels = i.i_labels; wr_kind = Gauge;
            wr_value = now; wr_sum = 0.0; wr_p50 = 0.0; wr_p95 = 0.0 }
    | Vhist now, prev ->
        let wc, ws, wb =
          match prev with
          | Some (Vhist w) -> (w.vh_count, w.vh_sum, Some w.vh_buckets)
          | _ -> (0, 0.0, None)
        in
        let dcount = now.vh_count - wc in
        let dbuckets =
          match wb with
          | None -> now.vh_buckets
          | Some wb ->
              Array.init (Array.length now.vh_buckets) (fun k ->
                  now.vh_buckets.(k) - wb.(k))
        in
        Some
          { wr_name = i.i_name; wr_labels = i.i_labels; wr_kind = Histogram;
            wr_value = float_of_int dcount; wr_sum = now.vh_sum -. ws;
            wr_p50 = quantile_of_buckets dbuckets dcount 50.0;
            wr_p95 = quantile_of_buckets dbuckets dcount 95.0 }
  in
  { w_from_us = a.sn_now_us; w_to_us = b.sn_now_us;
    w_rows = List.filter_map row b.sn_rows }

let windows (t : t) : window list =
  let rec pairs = function
    | a :: (b :: _ as rest) -> diff_snaps a b :: pairs rest
    | _ -> []
  in
  pairs (snapshots t)

(* ------------------------------------------------------------------ *)
(* Merging (per-domain shard aggregation)                              *)
(* ------------------------------------------------------------------ *)

let merge ~(into : t) (src : t) : unit =
  List.iter
    (fun i ->
      let dst =
        register into i.i_kind ~help:i.i_help ~labels:i.i_labels i.i_name
      in
      match (i.i_state, dst.i_state) with
      | Scounter s, Scounter d -> d.c <- d.c +. s.c
      | Sgauge s, Sgauge d -> d.g <- d.g +. s.g
      | Shist s, Shist d ->
          d.h_count <- d.h_count + s.h_count;
          d.h_sum <- d.h_sum +. s.h_sum;
          if s.h_max > d.h_max then d.h_max <- s.h_max;
          Array.iteri (fun k n -> d.h_buckets.(k) <- d.h_buckets.(k) + n)
            s.h_buckets
      | _ -> assert false)
    (instruments src)

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)
(* ------------------------------------------------------------------ *)

let render_labels (labels : (string * string) list) : string =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

let render_number (v : float) : string =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let to_prometheus ?(windows : bool = true) (t : t) : string =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let insts =
    List.sort
      (fun a b ->
        match compare a.i_name b.i_name with
        | 0 -> compare a.i_labels b.i_labels
        | c -> c)
      (instruments t)
  in
  let seen_header = Hashtbl.create 16 in
  let header name kind_str help =
    if not (Hashtbl.mem seen_header name) then begin
      Hashtbl.add seen_header name ();
      if help <> "" then pr "# HELP %s %s\n" name help;
      pr "# TYPE %s %s\n" name kind_str
    end
  in
  List.iter
    (fun i ->
      match i.i_state with
      | Scounter s ->
          header i.i_name "counter" i.i_help;
          pr "%s%s %s\n" i.i_name (render_labels i.i_labels) (render_number s.c)
      | Sgauge s ->
          header i.i_name "gauge" i.i_help;
          pr "%s%s %s\n" i.i_name (render_labels i.i_labels) (render_number s.g)
      | Shist s ->
          header i.i_name "histogram" i.i_help;
          (* cumulative buckets; only occupied le bounds are emitted,
             plus the mandatory +Inf *)
          let cum = ref 0 in
          Array.iteri
            (fun k n ->
              if n > 0 then begin
                cum := !cum + n;
                pr "%s_bucket%s %d\n" i.i_name
                  (render_labels
                     (i.i_labels
                     @ [ ("le", render_number (bucket_upper k)) ]))
                  !cum
              end)
            s.h_buckets;
          pr "%s_bucket%s %d\n" i.i_name
            (render_labels (i.i_labels @ [ ("le", "+Inf") ]))
            s.h_count;
          pr "%s_sum%s %s\n" i.i_name (render_labels i.i_labels)
            (render_number s.h_sum);
          pr "%s_count%s %d\n" i.i_name (render_labels i.i_labels) s.h_count)
    insts;
  if windows then begin
    let ws =
      let rec pairs = function
        | a :: (b :: _ as rest) -> diff_snaps a b :: pairs rest
        | _ -> []
      in
      pairs (snapshots t)
    in
    List.iteri
      (fun k (w : window) ->
        List.iter
          (fun (r : window_row) ->
            let wl suffix v =
              let fam = r.wr_name ^ "_window" ^ suffix in
              header fam "gauge"
                (Printf.sprintf "windowed series of %s" r.wr_name);
              pr "%s%s %s\n" fam
                (render_labels
                   (r.wr_labels
                   @ [
                       ("w", string_of_int k);
                       ("from_us", render_number w.w_from_us);
                       ("to_us", render_number w.w_to_us);
                     ]))
                (render_number v)
            in
            match r.wr_kind with
            | Counter | Gauge -> wl "" r.wr_value
            | Histogram ->
                wl "_count" r.wr_value;
                wl "_p50" r.wr_p50;
                wl "_p95" r.wr_p95)
          w.w_rows)
      ws
  end;
  Buffer.contents buf
