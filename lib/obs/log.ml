(* The leveled, structured logger.

   One process-wide logger (matching the one stderr the binaries own),
   with two renderings of the same record: a human text line

     [warn] corrupt journal record at byte 132; skipped  (path=cache.journal)

   and a machine JSON line ([--log-json])

     {"ts":1754462400.12,"level":"warn","msg":"...","path":"cache.journal"}

   Messages below the current level are not even formatted: the format
   string is consumed by [ikfprintf], so a [debug] call in a hot loop
   costs a couple of branches. The writer is replaceable (tests capture
   lines; a server could ship them), and the clock is injectable so JSON
   golden tests stay deterministic. *)

type level = Error | Warn | Info | Debug

let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

let level_name = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string (s : string) : level option =
  match String.lowercase_ascii s with
  | "error" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

let current_level = ref Warn
let set_level (l : level) : unit = current_level := l
let level () : level = !current_level
let json_mode = ref false
let set_json (b : bool) : unit = json_mode := b
let json () : bool = !json_mode
let enabled (l : level) : bool = severity l <= severity !current_level

let stderr_writer (line : string) : unit =
  output_string stderr line;
  output_char stderr '\n';
  flush stderr

let writer = ref stderr_writer
let set_writer (w : string -> unit) : unit = writer := w
let use_stderr () : unit = writer := stderr_writer

(* epoch seconds; injectable for deterministic tests *)
let clock = ref Unix.gettimeofday
let set_clock (c : unit -> float) : unit = clock := c

let render_text (l : level) (fields : (string * string) list) (msg : string) :
    string =
  let b = Buffer.create 80 in
  Buffer.add_string b (Printf.sprintf "[%s] %s" (level_name l) msg);
  (match fields with
  | [] -> ()
  | fields ->
      Buffer.add_string b "  (";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_string b k;
          Buffer.add_char b '=';
          Buffer.add_string b v)
        fields;
      Buffer.add_char b ')');
  Buffer.contents b

let render_json (l : level) (fields : (string * string) list) (msg : string) :
    string =
  Json.to_string
    (Json.Obj
       (("ts", Json.Num (!clock ()))
       :: ("level", Json.Str (level_name l))
       :: ("msg", Json.Str msg)
       :: List.map (fun (k, v) -> (k, Json.Str v)) fields))

let emit (l : level) (fields : (string * string) list) (msg : string) : unit =
  let line =
    if !json_mode then render_json l fields msg else render_text l fields msg
  in
  !writer line

let log (l : level) ?(fields = []) fmt =
  if enabled l then Printf.ksprintf (emit l fields) fmt
  else Printf.ikfprintf (fun () -> ()) () fmt

let error ?fields fmt = log Error ?fields fmt
let warn ?fields fmt = log Warn ?fields fmt
let info ?fields fmt = log Info ?fields fmt
let debug ?fields fmt = log Debug ?fields fmt
