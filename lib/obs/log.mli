(** Leveled structured logging for the whole stack.

    One process-wide logger with two renderings of the same record: a
    human text line and a JSON line (one object per line, [--log-json]).
    Messages below the current level are not formatted at all. The
    default level is {!Warn}, so replacing an ad-hoc
    [Printf.eprintf "warning: ..."] with {!warn} keeps it visible by
    default while making it filterable and machine-readable. *)

type level = Error | Warn | Info | Debug

val level_name : level -> string
val level_of_string : string -> level option

val set_level : level -> unit
val level : unit -> level

(** Would a message at this level be emitted? *)
val enabled : level -> bool

(** JSON-lines mode: every record becomes one
    [{"ts":...,"level":...,"msg":...,<fields>}] object. *)
val set_json : bool -> unit

val json : unit -> bool

(** Replace the line sink (default: stderr, flushed per line). *)
val set_writer : (string -> unit) -> unit

val use_stderr : unit -> unit

(** Replace the JSON timestamp clock (epoch seconds); for deterministic
    tests. *)
val set_clock : (unit -> float) -> unit

val error :
  ?fields:(string * string) list -> ('a, unit, string, unit) format4 -> 'a

val warn :
  ?fields:(string * string) list -> ('a, unit, string, unit) format4 -> 'a

val info :
  ?fields:(string * string) list -> ('a, unit, string, unit) format4 -> 'a

val debug :
  ?fields:(string * string) list -> ('a, unit, string, unit) format4 -> 'a
