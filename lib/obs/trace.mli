(** Span-based tracing with a ring-buffered in-memory sink and Chrome
    trace_event export.

    Disabled by default; every entry point is a single load-and-branch
    when off, so instrumentation lives permanently in the hot paths.
    The service opens one root span per request under a fresh trace id
    ({!with_request}); nested operations wrap themselves in {!span} and
    instantaneous facts are {!mark}ed. Export ({!to_chrome_json},
    {!save}) produces a Perfetto-loadable document whose [tid] is the
    trace id, so each request renders as its own track. *)

type ph = B | E | I

type event = {
  ev_ph : ph;
  ev_name : string;
  ev_tid : int;
  ev_ts : float;  (** microseconds *)
  ev_attrs : (string * string) list;
}

val set_enabled : bool -> unit
val enabled : unit -> bool

(** Resize the ring (clears all state). Default capacity is 2^18. *)
val set_capacity : int -> unit

val capacity : unit -> int

(** Events overwritten by the ring since the last {!clear}. *)
val dropped : unit -> int

(** Drop all buffered events and reset trace-id allocation. *)
val clear : unit -> unit

(** Replace the microsecond clock (deterministic tests). Recorded
    timestamps are clamped monotone regardless of the clock. *)
val set_clock : (unit -> float) -> unit

(** Buffered events, oldest first. *)
val events : unit -> event list

(** [span ~name f] runs [f] inside a B/E pair on the current trace id.
    The E is recorded even if [f] raises. *)
val span : ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a

(** Record an instant event on the current trace id. *)
val mark : ?attrs:(string * string) list -> string -> unit

(** [with_request ~name f] allocates a fresh trace id, runs [f] inside a
    root span on it, then restores the previous id. *)
val with_request :
  ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a

(** The trace id spans are currently recorded under (0 outside any
    {!with_request}). *)
val current_tid : unit -> int

(** {2 Span trees} *)

type node = {
  n_name : string;
  n_tid : int;
  n_start_us : float;
  n_dur_us : float;
  n_attrs : (string * string) list;
  n_marks : (string * (string * string) list) list;
      (** instants recorded directly under this span, oldest first *)
  n_children : node list;
}

(** Reconstruct span trees from the buffered events: one tree per root
    span, in chronological order. Spans whose B was overwritten by the
    ring are dropped; spans still open are closed at the newest buffered
    timestamp. *)
val forest : unit -> node list

(** Depth-first (pre-order) fold over a forest. *)
val fold_nodes : ('a -> node -> 'a) -> 'a -> node list -> 'a

(** {2 Chrome trace_event export} *)

(** The buffered events as a [{"traceEvents":[...]}] document: balanced
    B/E per tid, monotone timestamps. A ring that overwrote events
    additionally carries a top-level [droppedEvents] count, so a reader
    can tell a complete trace from a truncated one; a lossless export
    is byte-identical to the historical two-key document. *)
val to_chrome_json : unit -> string

val save : string -> unit

(** The [droppedEvents] marker of an exported document (0 when absent:
    the trace is complete). *)
val chrome_dropped : string -> int

val chrome_dropped_file : string -> int

(** Validate a Chrome trace-event document the way the CI job does:
    [traceEvents] exists, required fields present, timestamps monotone
    in file order, B/E balanced per (pid, tid). Returns the event
    count. *)
val validate_chrome : string -> (int, string) result

val validate_chrome_file : string -> (int, string) result
