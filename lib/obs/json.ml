(* A minimal JSON tree, printer and parser.

   The observability layer emits several machine-readable artifacts —
   Chrome trace files, JSON log lines, the [Stats] twin report — and the
   CI jobs must validate them without external tooling. This module is
   deliberately tiny: object key order is preserved verbatim (emission
   order is the stability contract of [Stats.to_json]), numbers are
   floats (JSON's own model), and the parser accepts exactly the
   standard grammar. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape (s : string) : string =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* integral values print without a fractional part (counter values, ids,
   fake-clock timestamps stay stable and diffable); everything else gets
   enough digits to round-trip the measurements we take *)
let number_to_string (x : float) : string =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.12g" x

let rec write (b : Buffer.t) (j : t) : unit =
  match j with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num x -> Buffer.add_string b (number_to_string x)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          write b item)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string (j : t) : string =
  let b = Buffer.create 256 in
  write b j;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string

type cursor = { src : string; mutable pos : int }

let peek (c : cursor) : char option =
  if c.pos < String.length c.src then Some c.src.[c.pos] else None

let fail_at (c : cursor) fmt =
  Printf.ksprintf (fun m -> raise (Bad (Printf.sprintf "%s at byte %d" m c.pos))) fmt

let skip_ws (c : cursor) : unit =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        c.pos <- c.pos + 1;
        true
    | _ -> false
  do
    ()
  done

let expect (c : cursor) (ch : char) : unit =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> fail_at c "expected %C, found %C" ch x
  | None -> fail_at c "expected %C, found end of input" ch

let literal (c : cursor) (word : string) (v : t) : t =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else fail_at c "invalid literal"

(* UTF-8 encode one scalar value (surrogate pairs are combined by the
   caller) *)
let add_utf8 (b : Buffer.t) (u : int) : unit =
  if u < 0x80 then Buffer.add_char b (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 (c : cursor) : int =
  if c.pos + 4 > String.length c.src then fail_at c "truncated \\u escape";
  let v = ref 0 in
  for i = 0 to 3 do
    let d =
      match c.src.[c.pos + i] with
      | '0' .. '9' as ch -> Char.code ch - Char.code '0'
      | 'a' .. 'f' as ch -> Char.code ch - Char.code 'a' + 10
      | 'A' .. 'F' as ch -> Char.code ch - Char.code 'A' + 10
      | _ -> fail_at c "invalid \\u escape"
    in
    v := (!v * 16) + d
  done;
  c.pos <- c.pos + 4;
  !v

let parse_string (c : cursor) : string =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail_at c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
        c.pos <- c.pos + 1;
        match peek c with
        | Some '"' -> Buffer.add_char b '"'; c.pos <- c.pos + 1; go ()
        | Some '\\' -> Buffer.add_char b '\\'; c.pos <- c.pos + 1; go ()
        | Some '/' -> Buffer.add_char b '/'; c.pos <- c.pos + 1; go ()
        | Some 'n' -> Buffer.add_char b '\n'; c.pos <- c.pos + 1; go ()
        | Some 't' -> Buffer.add_char b '\t'; c.pos <- c.pos + 1; go ()
        | Some 'r' -> Buffer.add_char b '\r'; c.pos <- c.pos + 1; go ()
        | Some 'b' -> Buffer.add_char b '\b'; c.pos <- c.pos + 1; go ()
        | Some 'f' -> Buffer.add_char b '\012'; c.pos <- c.pos + 1; go ()
        | Some 'u' ->
            c.pos <- c.pos + 1;
            let u = hex4 c in
            let u =
              (* high surrogate: combine with the following low one *)
              if u >= 0xD800 && u <= 0xDBFF
                 && c.pos + 2 <= String.length c.src
                 && c.src.[c.pos] = '\\'
                 && c.src.[c.pos + 1] = 'u'
              then begin
                c.pos <- c.pos + 2;
                let lo = hex4 c in
                if lo >= 0xDC00 && lo <= 0xDFFF then
                  0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00)
                else fail_at c "unpaired surrogate"
              end
              else u
            in
            add_utf8 b u;
            go ()
        | _ -> fail_at c "invalid escape")
    | Some ch ->
        Buffer.add_char b ch;
        c.pos <- c.pos + 1;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number (c : cursor) : float =
  let start = c.pos in
  let consume pred =
    while (match peek c with Some ch -> pred ch | None -> false) do
      c.pos <- c.pos + 1
    done
  in
  (match peek c with Some '-' -> c.pos <- c.pos + 1 | _ -> ());
  consume (function '0' .. '9' -> true | _ -> false);
  (match peek c with
  | Some '.' ->
      c.pos <- c.pos + 1;
      consume (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  (match peek c with
  | Some ('e' | 'E') ->
      c.pos <- c.pos + 1;
      (match peek c with Some ('+' | '-') -> c.pos <- c.pos + 1 | _ -> ());
      consume (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  match float_of_string_opt (String.sub c.src start (c.pos - start)) with
  | Some x -> x
  | None -> fail_at c "invalid number"

let rec parse_value (c : cursor) : t =
  skip_ws c;
  match peek c with
  | None -> fail_at c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin c.pos <- c.pos + 1; Obj [] end
      else begin
        let fields = ref [] in
        let rec go () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          fields := (k, v) :: !fields;
          skip_ws c;
          match peek c with
          | Some ',' -> c.pos <- c.pos + 1; go ()
          | Some '}' -> c.pos <- c.pos + 1
          | _ -> fail_at c "expected ',' or '}'"
        in
        go ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin c.pos <- c.pos + 1; Arr [] end
      else begin
        let items = ref [] in
        let rec go () =
          let v = parse_value c in
          items := v :: !items;
          skip_ws c;
          match peek c with
          | Some ',' -> c.pos <- c.pos + 1; go ()
          | Some ']' -> c.pos <- c.pos + 1
          | _ -> fail_at c "expected ',' or ']'"
        in
        go ();
        Arr (List.rev !items)
      end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number c)
  | Some ch -> fail_at c "unexpected character %C" ch

let of_string (src : string) : (t, string) result =
  let c = { src; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos = String.length src then Ok v
      else Error (Printf.sprintf "trailing garbage at byte %d" c.pos)
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member (name : string) (j : t) : t option =
  match j with Obj fields -> List.assoc_opt name fields | _ -> None

let to_list (j : t) : t list option =
  match j with Arr items -> Some items | _ -> None

let to_float (j : t) : float option = match j with Num x -> Some x | _ -> None
let to_str (j : t) : string option = match j with Str s -> Some s | _ -> None
