(* Declarative service-level objectives evaluated as multi-window burn
   rates on the virtual clock.

   An objective states a target good fraction (e.g. 0.95 of interactive
   requests under their latency bound). Its error budget is
   1 - target; the *burn rate* of a window is

     (bad fraction observed in the window) / (error budget)

   so burn 1.0 means "spending the budget exactly as fast as the
   objective allows", and burn 2.0 halves the time to exhaustion. The
   standard SRE multi-window rule fires only when BOTH a fast window
   (default 1 virtual minute — catches a cliff quickly) and a slow
   window (default 1 virtual hour — refuses to page on a blip) exceed
   the firing threshold, and resolves with hysteresis when both fall
   under the strictly lower resolve threshold.

   A zero-budget objective (target >= 1.0, e.g. "SDC escapes = 0")
   burns infinitely on any bad event, so it fires on the first one.

   Observations carry explicit virtual timestamps and land in
   fixed-size bucket rings (one bucket per 1/12 fast window), so every
   evaluation is a pure function of the observation sequence —
   deterministic across machines, replayable in tests. Early in a
   replay, before a window's worth of virtual time has elapsed, both
   windows see the same (entire) history and agree by construction:
   short-horizon replays can still fire. *)

type objective = {
  o_name : string;
  o_description : string;
  o_target : float;  (** required good fraction; >= 1.0 means zero budget *)
  o_fast_us : float;
  o_slow_us : float;
  o_fire_burn : float;
  o_resolve_burn : float;
}

let objective ?(description = "") ?(fast_us = 60.0e6) ?(slow_us = 3600.0e6)
    ?(fire_burn = 1.0) ?(resolve_burn = 0.5) ~(target : float)
    (name : string) : objective =
  if name = "" then invalid_arg "Slo.objective: empty name";
  if Float.is_nan target || target <= 0.0 then
    invalid_arg "Slo.objective: target must be positive";
  if fast_us <= 0.0 || slow_us < fast_us then
    invalid_arg "Slo.objective: need 0 < fast_us <= slow_us";
  if resolve_burn >= fire_burn then
    invalid_arg "Slo.objective: resolve_burn must be below fire_burn";
  { o_name = name; o_description = description; o_target = target;
    o_fast_us = fast_us; o_slow_us = slow_us; o_fire_burn = fire_burn;
    o_resolve_burn = resolve_burn }

(* one ring slot: good/bad counts of one bucket of virtual time, tagged
   with the bucket's epoch index so stale slots self-invalidate *)
type bucket = { mutable b_epoch : int; mutable b_good : int; mutable b_bad : int }

type t = {
  obj : objective;
  bucket_us : float;
  buckets : bucket array;  (** covers the slow window plus one bucket *)
  mutable firing : bool;
  mutable fired_count : int;  (** lifetime alert transitions into firing *)
  mutable last_change_us : float;
}

let create (obj : objective) : t =
  let bucket_us = obj.o_fast_us /. 12.0 in
  let n = int_of_float (Float.ceil (obj.o_slow_us /. bucket_us)) + 1 in
  {
    obj;
    bucket_us;
    buckets = Array.init n (fun _ -> { b_epoch = -1; b_good = 0; b_bad = 0 });
    firing = false;
    fired_count = 0;
    last_change_us = 0.0;
  }

let objective_of (t : t) : objective = t.obj
let name (t : t) : string = t.obj.o_name
let firing (t : t) : bool = t.firing
let fired_count (t : t) : int = t.fired_count
let last_change_us (t : t) : float = t.last_change_us

let epoch_of (t : t) (now_us : float) : int =
  int_of_float (Float.floor (Float.max 0.0 now_us /. t.bucket_us))

let observe (t : t) ~(now_us : float) ~(good : bool) : unit =
  let e = epoch_of t now_us in
  let b = t.buckets.(e mod Array.length t.buckets) in
  if b.b_epoch <> e then begin
    b.b_epoch <- e;
    b.b_good <- 0;
    b.b_bad <- 0
  end;
  if good then b.b_good <- b.b_good + 1 else b.b_bad <- b.b_bad + 1

(* (good, bad) observed inside the trailing [window_us] at [now_us] *)
let window_counts (t : t) ~(now_us : float) ~(window_us : float) : int * int =
  let hi = epoch_of t now_us in
  let lo = epoch_of t (Float.max 0.0 (now_us -. window_us)) in
  let good = ref 0 and bad = ref 0 in
  Array.iter
    (fun b ->
      if b.b_epoch >= lo && b.b_epoch <= hi then begin
        good := !good + b.b_good;
        bad := !bad + b.b_bad
      end)
    t.buckets;
  (!good, !bad)

type burn = {
  br_fast : float;
  br_slow : float;
  br_fast_bad : int;
  br_slow_bad : int;
}

let burn_of (t : t) ~(good : int) ~(bad : int) : float =
  let total = good + bad in
  if total = 0 then 0.0
  else
    let bad_frac = float_of_int bad /. float_of_int total in
    let budget = 1.0 -. t.obj.o_target in
    if budget <= 0.0 then if bad > 0 then infinity else 0.0
    else bad_frac /. budget

let burn_rates (t : t) ~(now_us : float) : burn =
  let gf, bf = window_counts t ~now_us ~window_us:t.obj.o_fast_us in
  let gs, bs = window_counts t ~now_us ~window_us:t.obj.o_slow_us in
  {
    br_fast = burn_of t ~good:gf ~bad:bf;
    br_slow = burn_of t ~good:gs ~bad:bs;
    br_fast_bad = bf;
    br_slow_bad = bs;
  }

type event = Fired of burn | Resolved of burn

let evaluate (t : t) ~(now_us : float) : event option =
  let b = burn_rates t ~now_us in
  if
    (not t.firing)
    && b.br_fast >= t.obj.o_fire_burn
    && b.br_slow >= t.obj.o_fire_burn
    && b.br_fast_bad > 0
  then begin
    t.firing <- true;
    t.fired_count <- t.fired_count + 1;
    t.last_change_us <- now_us;
    Some (Fired b)
  end
  else if
    t.firing
    && b.br_fast < t.obj.o_resolve_burn
    && b.br_slow < t.obj.o_resolve_burn
  then begin
    t.firing <- false;
    t.last_change_us <- now_us;
    Some (Resolved b)
  end
  else None

let state_json (t : t) ~(now_us : float) : Json.t =
  let b = burn_rates t ~now_us in
  let num v = if Float.is_finite v then Json.Num v else Json.Str "inf" in
  Json.Obj
    [
      ("name", Json.Str t.obj.o_name);
      ("description", Json.Str t.obj.o_description);
      ("target", Json.Num t.obj.o_target);
      ("firing", Json.Bool t.firing);
      ("fired_count", Json.Num (float_of_int t.fired_count));
      ("fast_burn", num b.br_fast);
      ("slow_burn", num b.br_slow);
      ("fast_bad", Json.Num (float_of_int b.br_fast_bad));
      ("slow_bad", Json.Num (float_of_int b.br_slow_bad));
    ]
