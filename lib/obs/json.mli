(** A minimal JSON tree, printer and parser, shared by every
    machine-readable artifact of the observability layer (Chrome trace
    files, JSON log lines, [Stats.to_json]) and by the CI validators
    that read them back. Object key order is preserved verbatim in both
    directions — emission order is the stability contract. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** JSON string-body escaping (no surrounding quotes). *)
val escape : string -> string

(** Integral floats print without a fractional part; others with enough
    digits to round-trip our measurements. *)
val number_to_string : float -> string

(** Compact rendering (no whitespace), object keys in list order. *)
val to_string : t -> string

(** Parse a complete JSON document (standard grammar, including [\uXXXX]
    escapes and surrogate pairs). *)
val of_string : string -> (t, string) result

val member : string -> t -> t option
val to_list : t -> t list option
val to_float : t -> float option
val to_str : t -> string option
