(** Tangram-OCaml: public API of the CGO 2019 reproduction.

    The pipeline:

    {v
      codelet source (Tir)  --check-->  unit
         --Passes (Fig. 5: atomics, shuffles)-->  codelet variants
         --Synthesis (Version enumeration + lowering)-->  device-IR programs
         --Gpusim / Cuda / Ptx-->  simulated timings / source text
    v}

    Quickstart:

    {[
      let ctx = Tangram.create () in
      let arch = Tangram.Arch.kepler_k40c in
      let sum = Tangram.reduce ctx ~arch (Array.init 4096 float_of_int) in
      ...
    ]}

    The re-exported modules give full access to each stage. *)

(** {1 Stage modules} *)

module Ast = Tir.Ast
module Parser = Tir.Parser
module Lexer = Tir.Lexer
module Check = Tir.Check
module Pp = Tir.Pp
module Builtins = Tir.Builtins
module Driver = Passes.Driver
module Version = Synthesis.Version
module Planner = Synthesis.Planner
module Tuner = Synthesis.Tuner
module Calibrate = Synthesis.Calibrate
module Arch = Gpusim.Arch
module Runner = Gpusim.Runner
module Interp = Gpusim.Interp
module Fault = Gpusim.Fault
module Compiled = Gpusim.Compiled
module Value = Gpusim.Value
module Cost = Gpusim.Cost
module Events = Gpusim.Events
module Cuda = Device_ir.Cuda
module Ir = Device_ir.Ir
module Validate = Device_ir.Validate
module Diag = Device_ir.Diag
module Race = Device_ir.Race
module Access = Device_ir.Access
module Ir_analysis = Device_ir.Analysis
module Unroll = Device_ir.Unroll
module Vectorize = Device_ir.Vectorize
module Ptx = Device_ir.Ptx
module Serialize = Device_ir.Serialize
module Symbolic = Symbolic
(** The symbolic shuffle engine: term normal forms ({!Symbolic.Term}),
    the warp-level symbolic evaluator ({!Symbolic.Eval}), the
    equivalence prover ({!Symbolic.Prove}) and proof-guided synthesis
    ({!Symbolic.Synth}, {!Symbolic.Exchange}). *)

module Plan_cache = Runtime.Plan_cache
module Service = Runtime.Service
module Admission = Runtime.Admission

(** The simulated device fleet: failure profiles, health-aware routing,
    hedged execution ({!Service.attach_fleet}). *)
module Fleet = Runtime.Fleet

module Stats = Runtime.Stats
module Trace = Runtime.Trace
module Tolerance = Runtime.Tolerance
module Guard = Runtime.Guard

(** The black-box flight recorder: per-request ring plus incident
    bundles ({!Service.attach_monitor}). *)
module Recorder = Runtime.Recorder

(** The observability layer ({!Obs.Trace}, {!Obs.Log}, {!Obs.Json},
    {!Obs.Metrics}, {!Obs.Slo}); {!Trace} above is the request-trace
    replayer, a different thing. *)
module Obs = Obs

module Scan = Apps.Scan
module Histogram = Apps.Histogram
module Cub = Baselines.Cub
module Kokkos = Baselines.Kokkos
module Openmp = Baselines.Openmp

(** {1 Reduction contexts} *)

(** A reduction context: the checked codelet unit, its pass-generated
    variants, and caches of tuned parameters and per-size version
    selections (the runtime selection the paper delegates to DySel). *)
type t = {
  plan : Planner.t;
  tuned : (string * Version.t, (string * int) list) Hashtbl.t;
  selected : (string * int, Version.t * (string * int) list) Hashtbl.t;
}

(** [create ()] builds a context for the paper's [sum] spectrum; [~source]
    supplies a different codelet unit (e.g. {!Builtins.max_source} or your
    own).
    @raise Tir.Parser.Parse_error / {!Check.Check_error} on bad source. *)
val create : ?source:string -> unit -> t

val plan : t -> Planner.t

(** All synthesisable code versions (the 88-version search space). *)
val all_versions : unit -> Version.t list

(** The pruned search space: the 30 versions that finish with global
    atomics (Section IV-B). *)
val pruned_versions : unit -> Version.t list

(** The CUDA C source of one version — the paper's output path. *)
val cuda_source : ?options:Cuda.options -> t -> Version.t -> string

(** {1 Tuning and selection} *)

(** Best tunables for a version on an architecture, swept at size [n]
    (default 16M, like the paper's one-off tuning script); cached. *)
val tuned_parameters : ?n:int -> t -> arch:Arch.t -> Version.t -> (string * int) list

(** The power-of-two size class used as the selection-cache key. *)
val size_bucket : int -> int

(** Dynamic version selection: the fastest pruned version at this size
    class on the simulated architecture, with its tuned parameters;
    cached per (architecture, size class). *)
val select : t -> arch:Arch.t -> n:int -> Version.t * (string * int) list

(** {1 One-call reduction} *)

(** Reduce [input] on the simulated architecture with the best version for
    its size (full outcome: value, simulated time, per-launch costs). *)
val reduce_outcome : t -> arch:Arch.t -> float array -> Runner.outcome

(** Just the reduced value. *)
val reduce : t -> arch:Arch.t -> float array -> float
