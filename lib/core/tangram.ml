(* Tangram-OCaml: public API.

   This library reproduces "Automatic Generation of Warp-Level Primitives
   and Atomic Instructions for Fast and Portable Parallel Reduction on
   GPUs" (CGO 2019). The pipeline:

   {v
     codelet source (Tir)  --check-->  unit
        --Passes (Fig. 5: atomics, shuffles)-->  codelet variants
        --Synthesis (Version enumeration + lowering)-->  device-IR programs
        --Gpusim / Device_ir.Cuda-->  simulated timings / CUDA C text
   v}

   Quickstart:

   {[
     let ctx = Tangram.create () in
     let arch = Tangram.Arch.kepler_k40c in
     let sum = Tangram.reduce ctx ~arch (Array.init 4096 float_of_int) in
     ...
   ]}

   The re-exported modules give full access to each stage. *)

module Ast = Tir.Ast
module Parser = Tir.Parser
module Lexer = Tir.Lexer
module Check = Tir.Check
module Pp = Tir.Pp
module Builtins = Tir.Builtins
module Driver = Passes.Driver
module Version = Synthesis.Version
module Planner = Synthesis.Planner
module Tuner = Synthesis.Tuner
module Calibrate = Synthesis.Calibrate
module Arch = Gpusim.Arch
module Runner = Gpusim.Runner
module Interp = Gpusim.Interp
module Fault = Gpusim.Fault
module Compiled = Gpusim.Compiled
module Value = Gpusim.Value
module Cost = Gpusim.Cost
module Events = Gpusim.Events
module Cuda = Device_ir.Cuda
module Ir = Device_ir.Ir
module Validate = Device_ir.Validate
module Diag = Device_ir.Diag
module Race = Device_ir.Race
module Access = Device_ir.Access
module Unroll = Device_ir.Unroll
module Vectorize = Device_ir.Vectorize
module Ptx = Device_ir.Ptx
module Serialize = Device_ir.Serialize
module Ir_analysis = Device_ir.Analysis
(* the symbolic shuffle engine: term normal forms, the warp-level
   symbolic evaluator, the equivalence prover and proof-guided synthesis
   ([Symbolic.Term], [Symbolic.Eval], [Symbolic.Prove], [Symbolic.Synth],
   [Symbolic.Exchange]) *)
module Symbolic = Symbolic
module Plan_cache = Runtime.Plan_cache
module Service = Runtime.Service
module Admission = Runtime.Admission
module Fleet = Runtime.Fleet
module Stats = Runtime.Stats
module Trace = Runtime.Trace
module Tolerance = Runtime.Tolerance
module Guard = Runtime.Guard
module Recorder = Runtime.Recorder
(* the whole observability layer ([Obs.Trace], [Obs.Log], [Obs.Json]);
   [Trace] above is the request-trace replayer, a different thing *)
module Obs = Obs
module Scan = Apps.Scan
module Histogram = Apps.Histogram
module Cub = Baselines.Cub
module Kokkos = Baselines.Kokkos
module Openmp = Baselines.Openmp

(** A reduction context: the checked codelet unit, its pass-generated
    variants, and caches of tuned parameters and per-size version
    selections (the runtime selection the paper delegates to DySel). *)
type t = {
  plan : Planner.t;
  tuned : (string * Version.t, (string * int) list) Hashtbl.t;
      (** (architecture, version) -> best tunables *)
  selected : (string * int, Version.t * (string * int) list) Hashtbl.t;
      (** (architecture, size bucket) -> chosen version *)
}

(** [create ()] builds a context for the paper's [sum] reduction;
    [~source] supplies a different codelet unit (e.g.
    {!Tir.Builtins.max_source}, or your own). *)
let create ?source () : t =
  let unit_info =
    match source with
    | None -> Builtins.sum_unit ()
    | Some src -> Check.check_unit (Parser.parse_unit src)
  in
  { plan = Planner.create unit_info; tuned = Hashtbl.create 64;
    selected = Hashtbl.create 64 }

let plan (t : t) : Planner.t = t.plan

(** All synthesisable code versions (the 88-version search space). *)
let all_versions () : Version.t list = Synthesis.Version.enumerate ()

(** The pruned search space: the 30 versions that finish with global
    atomics (Section IV-B). *)
let pruned_versions () : Version.t list = Synthesis.Version.enumerate_pruned ()

(** The CUDA C source of one version — the paper's output path. *)
let cuda_source ?options (t : t) (v : Version.t) : string =
  Planner.cuda_source ?options t.plan v

(* ------------------------------------------------------------------ *)
(* Tuning and selection                                                *)
(* ------------------------------------------------------------------ *)

(** Best tunables for [v] on [arch], swept at size [n] (cached per
    architecture/version, like the paper's one-off tuning script). *)
let tuned_parameters ?(n = 1 lsl 24) (t : t) ~(arch : Arch.t) (v : Version.t) :
    (string * int) list =
  let key = (arch.Arch.name, v) in
  match Hashtbl.find_opt t.tuned key with
  | Some tn -> tn
  | None ->
      let outcome = Tuner.tune ~arch ~n (Planner.compiled t.plan v) in
      Hashtbl.add t.tuned key outcome.Tuner.best;
      outcome.Tuner.best

let size_bucket (n : int) : int =
  (* one selection per power-of-two size class *)
  let rec go b k = if k <= 1 then b else go (b + 1) (k lsr 1) in
  go 0 n

(** Dynamic version selection: evaluate every pruned version at this size
    class on the simulated architecture (sampled mode) and keep the
    fastest. Cached per (architecture, size class). *)
let select (t : t) ~(arch : Arch.t) ~(n : int) : Version.t * (string * int) list =
  let key = (arch.Arch.name, size_bucket n) in
  match Hashtbl.find_opt t.selected key with
  | Some x -> x
  | None ->
      let pattern = Array.init 1024 (fun i -> float_of_int (i land 7)) in
      let input = Runner.Synthetic { n; pattern } in
      let opts =
        { Interp.max_blocks = Some 12; loop_cap = Some 24; check_uniform = false }
      in
      let best = ref None in
      List.iter
        (fun v ->
          let tunables = tuned_parameters t ~arch v in
          match Planner.run ~opts ~arch ~tunables t.plan ~input v with
          | o -> (
              match !best with
              | Some (_, _, bt) when bt <= o.Runner.time_us -> ()
              | _ -> best := Some (v, tunables, o.Runner.time_us))
          | exception Interp.Sim_error _ -> ())
        (pruned_versions ());
      (match !best with
      | Some (v, tunables, _) ->
          Hashtbl.add t.selected key (v, tunables);
          (v, tunables)
      | None -> invalid_arg "Tangram.select: no version survived")

(* ------------------------------------------------------------------ *)
(* One-call reduction                                                  *)
(* ------------------------------------------------------------------ *)

(** Reduce [input] on the simulated [arch] with the best version for its
    size; returns the value and the simulated wall-clock. *)
let reduce_outcome (t : t) ~(arch : Arch.t) (input : float array) : Runner.outcome =
  let v, tunables = select t ~arch ~n:(Array.length input) in
  Planner.run ~arch ~tunables t.plan ~input:(Runner.Dense input) v

let reduce (t : t) ~(arch : Arch.t) (input : float array) : float =
  (reduce_outcome t ~arch input).Runner.result
