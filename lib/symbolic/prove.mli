(** Machine-checked equivalence proofs for compiled reduction versions.

    A proof symbolically executes the lowered program over a fully
    symbolic input at a small matrix of concrete geometries (input sizes
    x tunable assignments) and compares the resulting normal-form term
    against the tree-loop reference fold. Int add and int/float min/max
    are proved exactly; float add/sub is proved modulo reassociation,
    with a per-geometry {!cert} recording the measured combine-tree depth
    for {!Runtime.Tolerance}'s analytic rounding model to admit. *)

(** Reassociation certificate for one proof geometry. *)
type cert = {
  c_n : int;  (** input size of the geometry *)
  c_tunables : (string * int) list;  (** tunable assignment *)
  c_depth : int;  (** measured combine-tree depth of the version's result *)
  c_ref_depth : int;  (** depth of the reference left-fold (= [c_n]) *)
}

type failure = {
  f_code : string;  (** TSYM001..TSYM004 *)
  f_geometry : string;  (** e.g. ["n=33, bsize=32"] *)
  f_message : string;
}

type verdict =
  | Proved  (** equal to the reference at every geometry, exactly *)
  | Proved_reassoc of cert list
      (** equal modulo reassociation (float add/sub), one certificate per
          geometry *)
  | Refuted of failure list

(** Input sizes of the default proof matrix: [1; 33; 257]. *)
val default_sizes : int list

(** The tree-loop reference: the combining operation folded left over the
    identity and [x_0 .. x_(n-1)]. *)
val reference_term :
  op:Device_ir.Ir.atomic_op -> elem:Device_ir.Ir.scalar -> n:int -> Term.t

(** [equiv ~op ~elem p] proves [p] equivalent to the reference reduction
    of [op] over [elem] elements across the geometry matrix. Total:
    any escape of the symbolic fragment refutes rather than raising. *)
val equiv :
  ?sizes:int list ->
  op:Device_ir.Ir.atomic_op ->
  elem:Device_ir.Ir.scalar ->
  Device_ir.Ir.program ->
  verdict

val proved : verdict -> bool

(** Distinct failure codes of a refutation, sorted; [[]] for proofs. *)
val codes : verdict -> string list

(** The deepest per-geometry certificate, if any. *)
val worst_cert : verdict -> cert option

(** One-line human-readable summary. *)
val describe : verdict -> string

(** Refutation failures as {!Device_ir.Diag} errors ([program] names the
    program under proof). Proofs yield no diagnostics. *)
val to_diags : program:string -> verdict -> Device_ir.Diag.t list
