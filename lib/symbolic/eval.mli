(** Symbolic execution of device-IR programs.

    {!Gpusim.Interp}'s twin: the same warp-synchronous SIMT schedule,
    shuffle lane-index arithmetic and lane-order atomic serialisation,
    but input elements are opaque {!Term} symbols, execution is always
    exact (every block of every launch), and the evaluator additionally
    tracks the synchronization hazards a proof must exclude: per-cell
    shared-memory writer warps per barrier epoch, and per-cell global
    writer blocks per launch.

    Aborts are typed by diagnostic code:
    - [TSYM002] — outside the symbolic fragment (data-dependent control
      flow or addressing, non-monoid operators on symbolic data,
      divergent barriers, out-of-bounds accesses);
    - [TSYM003] — unsynchronized cross-warp shared (or cross-block
      global) read-after-write or write-after-write hazard;
    - [TSYM004] — a shuffle whose width exceeds the 32-lane warp or that
      sources a lane outside it. *)

exception Abort of { a_code : string; a_message : string }

val warp_lanes : int

(** Symbolically execute [p] on a fully symbolic input of [n] elements
    (element [i] is {!Term.Sym}[ i]) and return the term left in cell 0
    of the result buffer. Geometry is concrete: [tunables] defaults to
    the first candidate of each tunable.
    @raise Abort on any shape, hazard or shuffle violation. *)
val run_program :
  ?tunables:(string * int) list -> n:int -> Device_ir.Ir.program -> Term.t
