(* The equivalence checker: machine-checked proofs that a composed code
   version computes the same reduction as its tree-loop reference.

   A proof is a bounded-geometry symbolic execution: the input is fully
   symbolic (element [i] is the opaque symbol [x_i]) while the geometry
   (input length, block size, coarsening) is concrete, drawn from a small
   matrix that exercises the interesting shapes — a single element, a
   block with a dead warp tail, several blocks with a partial edge block,
   and two tunable assignments (two block widths, plus thread coarsening
   where the version has it). For a fixed geometry the symbolic result is
   a closed normal-form term; comparing it against the reference fold of
   the combining operation over [x_0..x_(n-1)] decides equivalence:

   - int add and int/float min/max are {i exact} — the normal forms
     quotient by exactly the associativity/commutativity the operator
     really has (and idempotence for min/max), so term equality is
     semantic equality;
   - float add/sub is proved {i modulo reassociation}: the symbol
     multisets match but floating-point addition does not associate, so
     each geometry yields a {!cert} recording the measured combine-tree
     depth. {!Runtime.Tolerance} cross-checks the certificate against its
     analytic rounding-step model (the proof-vs-witness layering: the
     proof pins the shape of the reassociation, the tolerance model
     bounds its numeric effect).

   The symbolic domain is sound but incomplete: a program that leaves the
   supported fragment (data-dependent branching, non-monoid arithmetic on
   input data) refutes with TSYM002 rather than proving anything — for
   the reduction versions this pipeline composes, the fragment is
   complete. *)

module Ir = Device_ir.Ir
module Diag = Device_ir.Diag

(** Reassociation certificate for one proof geometry: float-add results
    equal the reference as a multiset, but the version combines in a
    different tree; [c_depth] is the measured depth of that tree
    (the reference left-fold has depth [c_ref_depth] = n). *)
type cert = {
  c_n : int;
  c_tunables : (string * int) list;
  c_depth : int;
  c_ref_depth : int;
}

type failure = {
  f_code : string;  (** TSYM001..TSYM004 *)
  f_geometry : string;  (** e.g. ["n=33, bsize=32"] *)
  f_message : string;
}

type verdict =
  | Proved  (** equal to the reference at every geometry, exactly *)
  | Proved_reassoc of cert list
      (** equal modulo reassociation (float add/sub), one certificate per
          geometry *)
  | Refuted of failure list

(** Input sizes of the default proof matrix: a single element, one block
    with a dead warp tail, and several blocks with a partial edge block. *)
let default_sizes = [ 1; 33; 257 ]

(* The smallest candidate of each tunable, plus (when distinct) the
   second-smallest assignment — a second block width, and a coarsening
   factor > 1 where the version has one — without exploding proof cost. *)
let geometry_tunables (p : Ir.program) : (string * int) list list =
  let pick k =
    List.map
      (fun (name, cands) ->
        (name, List.nth cands (min k (max 0 (List.length cands - 1)))))
      p.Ir.p_tunables
  in
  let a = pick 0 and b = pick 1 in
  if a = b then [ a ] else [ a; b ]

(** The tree-loop reference: the combining operation folded left over the
    identity and [x_0 .. x_(n-1)]. *)
let reference_term ~(op : Ir.atomic_op) ~(elem : Ir.scalar) ~(n : int) : Term.t =
  let acc =
    ref (Term.Conc (Gpusim.Value.of_float elem (Ir.identity_value op elem)))
  in
  for i = 0 to n - 1 do
    acc := Term.combine op !acc (Term.Sym i)
  done;
  !acc

let op_class (op : Ir.atomic_op) : [ `Add | `Ext of bool ] =
  match op with
  | Ir.A_add | Ir.A_sub -> `Add
  | Ir.A_min -> `Ext false
  | Ir.A_max -> `Ext true

(* compare the version's result term with the reference; Ok carries the
   version term's combine depth (the certificate payload) *)
let compare_terms ~(op : Ir.atomic_op) ~(elem : Ir.scalar) ~(expected : Term.t)
    ~(got : Term.t) : (int, string) result =
  match op_class op with
  | `Add ->
      let e = Term.canon_add expected and g = Term.canon_add got in
      if Term.equal_add e g then Ok g.Term.a_depth
      else Error (Term.explain_add_diff ~expected:e ~got:g)
  | `Ext maxi ->
      let e = Term.canon_ext ~maxi ~elem expected
      and g = Term.canon_ext ~maxi ~elem got in
      if Term.equal_ext e g then Ok g.Term.e_depth
      else Error (Term.explain_ext_diff ~expected:e ~got:g)

let geometry_name (n : int) (tunables : (string * int) list) : string =
  Printf.sprintf "n=%d%s" n
    (String.concat ""
       (List.map (fun (k, v) -> Printf.sprintf ", %s=%d" k v) tunables))

(** Prove [p] equivalent to the reference reduction of [op] over [elem]
    elements, across the geometry matrix [sizes] x tunable assignments.
    Total: never raises — any escape of the symbolic fragment refutes. *)
let equiv ?(sizes = default_sizes) ~(op : Ir.atomic_op) ~(elem : Ir.scalar)
    (p : Ir.program) : verdict =
  let geometries =
    List.concat_map
      (fun tunables -> List.map (fun n -> (n, tunables)) sizes)
      (geometry_tunables p)
  in
  let failures = ref [] and certs = ref [] in
  List.iter
    (fun (n, tunables) ->
      let where = geometry_name n tunables in
      let fail code message =
        failures := { f_code = code; f_geometry = where; f_message = message } :: !failures
      in
      match Eval.run_program ~tunables ~n p with
      | exception Eval.Abort { a_code; a_message } -> fail a_code a_message
      | exception e ->
          fail "TSYM002"
            (Printf.sprintf "symbolic execution failed: %s" (Printexc.to_string e))
      | got -> (
          let expected = reference_term ~op ~elem ~n in
          match compare_terms ~op ~elem ~expected ~got with
          | Ok depth ->
              certs :=
                { c_n = n; c_tunables = tunables; c_depth = depth; c_ref_depth = n }
                :: !certs
          | Error msg ->
              fail "TSYM001"
                (Printf.sprintf
                   "result term differs from the tree-loop reference: %s \
                    (computed %s)"
                   msg (Term.describe got))
          | exception Term.Unsupported msg -> fail "TSYM002" msg))
    geometries;
  if !failures <> [] then Refuted (List.rev !failures)
  else
    match (op_class op, elem) with
    | `Add, Ir.F32 -> Proved_reassoc (List.rev !certs)
    | _ -> Proved

let proved = function Proved | Proved_reassoc _ -> true | Refuted _ -> false

(** Distinct failure codes of a refutation, sorted. *)
let codes = function
  | Proved | Proved_reassoc _ -> []
  | Refuted fs -> List.sort_uniq compare (List.map (fun f -> f.f_code) fs)

(** The deepest per-geometry certificate, if any. *)
let worst_cert = function
  | Proved_reassoc (c :: cs) ->
      Some
        (List.fold_left (fun acc c -> if c.c_depth > acc.c_depth then c else acc) c cs)
  | Proved_reassoc [] | Proved | Refuted _ -> None

let describe = function
  | Proved -> "proved (exact)"
  | Proved_reassoc certs ->
      let worst =
        List.fold_left (fun acc c -> max acc c.c_depth) 0 certs
      in
      Printf.sprintf "proved modulo reassociation (%d geometries, depth <= %d)"
        (List.length certs) worst
  | Refuted fs ->
      Printf.sprintf "refuted (%d failure%s: %s)" (List.length fs)
        (if List.length fs = 1 then "" else "s")
        (String.concat ", " (List.sort_uniq compare (List.map (fun f -> f.f_code) fs)))

(** Refutation failures as {!Device_ir.Diag} errors ([kernel] is the
    program under proof; the location is the failing geometry). Proofs
    yield no diagnostics. *)
let to_diags ~(program : string) (v : verdict) : Diag.t list =
  match v with
  | Proved | Proved_reassoc _ -> []
  | Refuted fs ->
      List.map
        (fun f ->
          Diag.make ~loc:f.f_geometry ~code:f.f_code ~severity:Diag.Error
            ~kernel:program f.f_message)
        fs
