(** Normal forms for symbolic reduction values.

    Symbolic input elements are opaque symbols; the two operator classes a
    reduction monoid admits normalise into canonical shapes — additive
    ([+]/[-]: constant + signed symbol multiset, with the combine-tree
    depth carried as a reassociation certificate) and extremal
    ([min]/[max]: optional constant + symbol set, exact because the
    operators are idempotent). Any operation outside the monoid raises
    {!Unsupported}, which the prover reports as a TSYM002 diagnostic. *)

(** Raised when an operation cannot be represented symbolically. *)
exception Unsupported of string

type add_nf = {
  a_const : float;
  a_coeffs : (int * int) list;
      (** symbol id -> signed multiplicity; sorted by id, no zero entries *)
  a_depth : int;  (** combine-tree depth: the reassociation certificate *)
}

type ext_nf = {
  e_max : bool;  (** [true] = max, [false] = min *)
  e_const : float option;
  e_syms : int list;  (** sorted, deduplicated *)
  e_depth : int;
}

type t =
  | Conc of Gpusim.Value.t  (** fully concrete *)
  | Sym of int  (** input element [x_i] *)
  | Add of add_nf
  | Ext of ext_nf
  | Poison of string  (** unrepresentable; aborts the proof only if used *)

val of_value : Gpusim.Value.t -> t
val sym : int -> t
val poison : string -> t

(** Combine-tree depth (0 for leaves). *)
val depth : t -> int

(** Short human-readable rendering for diagnostics. *)
val describe : t -> string

(** Concretise. [what] names the position requiring a concrete value.
    @raise Unsupported if the term is symbolic or poisoned. *)
val to_value : what:string -> t -> Gpusim.Value.t

(** Apply a binary operator. Concrete operands delegate to
    {!Gpusim.Value.binop}; symbolic operands admit only the monoid
    operators ([Add]/[Sub]/[Min]/[Max]).
    @raise Unsupported otherwise. *)
val binop : Device_ir.Ir.binop -> t -> t -> t

(** @raise Unsupported on non-[Neg] symbolic operands. *)
val unop : Device_ir.Ir.unop -> t -> t

(** Fold with an atomic operation's combining function. *)
val combine : Device_ir.Ir.atomic_op -> t -> t -> t

(** The magnitude bound assumed on every input element (proof domain). *)
val domain_bound : Device_ir.Ir.scalar -> float

(** Additive canonical form. @raise Unsupported on extremal/poison terms. *)
val canon_add : t -> add_nf

(** Extremal canonical form with identity-constant elision: constants that
    cannot dominate any in-domain element are dropped.
    @raise Unsupported on additive/poison terms. *)
val canon_ext : maxi:bool -> elem:Device_ir.Ir.scalar -> t -> ext_nf

val equal_add : add_nf -> add_nf -> bool
val equal_ext : ext_nf -> ext_nf -> bool
val explain_add_diff : expected:add_nf -> got:add_nf -> string
val explain_ext_diff : expected:ext_nf -> got:ext_nf -> string
