(** Proof-guided synthesis: the enumerated shuffle exchange space.

    {!candidates} deliberately mixes classically correct networks with
    plausible-looking broken ones; {!Synthesis.Planner.synthesize}
    composes each into full versions and registers only those
    {!Prove.equiv} certifies. *)

val candidates : unit -> Exchange.t list

(** Outcome of one synthesis sweep. *)
type summary = {
  sy_enumerated : int;
  sy_proven : int;  (** distinct composed versions the prover certified *)
  sy_refuted : int;
  sy_registered : int;  (** versions registered into the version space *)
}

val describe_summary : summary -> string
