(* Proof-guided synthesis: the enumerated shuffle exchange space.

   The enumeration is deliberately unfiltered — it mixes classically
   correct networks (down-shift trees, butterflies, segmented and
   mixed-width hybrids) with plausible-looking broken ones (truncated
   trees, an over-wide shuffle). No candidate is trusted: the planner
   composes each into a full version and keeps only those the symbolic
   prover certifies, so the broken seeds double as a built-in soundness
   check that the proof filter actually rejects something. *)

let candidates () : Exchange.t list =
  let d = Exchange.down and x = Exchange.xor in
  [
    (* classic down-shift tree: lane 0 accumulates halves *)
    Exchange.make "down32" [ d 16; d 8; d 4; d 2; d 1 ];
    (* butterfly: every lane converges to the full reduction *)
    Exchange.make "bfly32" [ x 1; x 2; x 4; x 8; x 16 ];
    (* butterfly, descending masks — same network, different schedule *)
    Exchange.make "bfly32r" [ x 16; x 8; x 4; x 2; x 1 ];
    (* two 16-lane segment trees, then one cross-segment shift *)
    Exchange.make "seg16+down"
      [ d ~width:16 8; d ~width:16 4; d ~width:16 2; d ~width:16 1; d 16 ];
    (* four 8-lane butterflies, then a two-level shift tree *)
    Exchange.make "seg8+tree"
      [ x ~width:8 1; x ~width:8 2; x ~width:8 4; d 8; d 16 ];
    (* shift down to quarter-sums, finish with an 8-lane butterfly *)
    Exchange.make "mix" [ d 16; d 8; x ~width:8 4; x ~width:8 2; x ~width:8 1 ];
    (* broken: tree truncated before the last exchange — misses lanes *)
    Exchange.make "down-short" [ d 16; d 8; d 4; d 2 ];
    (* broken: butterfly missing its top mask — only half the warp *)
    Exchange.make "bfly-short" [ x 1; x 2; x 4; x 8 ];
    (* broken: 64-lane tree on 32-lane hardware *)
    Exchange.make "wide64"
      [ d ~width:64 32; d ~width:64 16; d ~width:64 8; d ~width:64 4;
        d ~width:64 2; d ~width:64 1 ];
  ]

(** Outcome of one synthesis sweep. *)
type summary = {
  sy_enumerated : int;
  sy_proven : int;  (** distinct composed versions the prover certified *)
  sy_refuted : int;
  sy_registered : int;  (** versions registered into the version space *)
}

let describe_summary s =
  Printf.sprintf
    "%d exchanges enumerated -> %d version(s) proven, %d refuted, %d registered"
    s.sy_enumerated s.sy_proven s.sy_refuted s.sy_registered
