(* Shuffle exchange networks: the candidate space the synthesiser
   enumerates and the prover filters.

   An exchange is a straight-line sequence of shuffle-and-combine steps
   run by every lane of a warp. Each step publishes the lane's partial,
   reads a peer lane's partial through [shfl_down] (shift) or [shfl_xor]
   (butterfly) at some width, and folds it in. A correct exchange leaves
   the reduction of all 32 lane partials in lane 0; whether a given step
   list does so is not decided here — the symbolic prover checks each
   candidate after it is composed into a full version. *)

module Ir = Device_ir.Ir

type mode = Down | Xor

type step = {
  s_mode : mode;
  s_arg : int;  (** shift distance ([Down]) or lane mask ([Xor]) *)
  s_width : int;  (** shuffle width the step claims *)
}

(* Pure structural data: Synthesis.Version embeds exchanges in its
   version type, which is compared and hashed structurally. *)
type t = { x_name : string; x_steps : step list }

let make name steps = { x_name = name; x_steps = steps }
let name t = t.x_name
let steps t = t.x_steps

let down ?(width = 32) arg = { s_mode = Down; s_arg = arg; s_width = width }
let xor ?(width = 32) arg = { s_mode = Xor; s_arg = arg; s_width = width }

let describe_step s =
  Printf.sprintf "%s(%d)@%d"
    (match s.s_mode with Down -> "down" | Xor -> "xor")
    s.s_arg s.s_width

let describe t =
  Printf.sprintf "%s: %s" t.x_name
    (String.concat " ; " (List.map describe_step t.x_steps))

(** Emit the exchange as IR statements folding the warp's partials held
    in register [v], using [tmp] as the shuffle landing register and
    [combine] as the operation's expression-level combiner. *)
let warp_stage ~(combine : Ir.exp -> Ir.exp -> Ir.exp) ~(v : string)
    ~(tmp : string) (t : t) : Ir.stmt list =
  List.concat_map
    (fun s ->
      let shfl =
        match s.s_mode with
        | Down -> Ir.shfl_down tmp (Ir.Reg v) (Ir.Int s.s_arg) ~width:s.s_width
        | Xor -> Ir.shfl_xor tmp (Ir.Reg v) (Ir.Int s.s_arg) ~width:s.s_width
      in
      [ shfl; Ir.let_ v (combine (Ir.Reg v) (Ir.Reg tmp)) ])
    t.x_steps
