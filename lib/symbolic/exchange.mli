(** Shuffle exchange networks: straight-line shuffle-and-combine
    sequences over a warp's partials, the raw material of proof-guided
    synthesis. Values are pure structural data so {!Synthesis.Version}
    can embed them in its structurally-compared version type. *)

type mode = Down | Xor

type step = {
  s_mode : mode;
  s_arg : int;  (** shift distance ([Down]) or lane mask ([Xor]) *)
  s_width : int;  (** shuffle width the step claims *)
}

type t = { x_name : string; x_steps : step list }

val make : string -> step list -> t
val name : t -> string
val steps : t -> step list

(** [down ?width d] / [xor ?width m] build steps; [width] defaults to the
    full 32-lane warp. *)
val down : ?width:int -> int -> step

val xor : ?width:int -> int -> step

(** [describe t] renders the step list, e.g.
    ["bfly32: xor(1)@32 ; xor(2)@32 ; ..."]. *)
val describe : t -> string

(** Emit the exchange as IR statements folding the warp's partials held
    in register [v], using [tmp] as the shuffle landing register and
    [combine] as the operation's expression-level combiner. Every lane
    runs every step; correctness (the full warp reduction landing in
    lane 0) is established by the symbolic prover, not assumed. *)
val warp_stage :
  combine:(Device_ir.Ir.exp -> Device_ir.Ir.exp -> Device_ir.Ir.exp) ->
  v:string ->
  tmp:string ->
  t ->
  Device_ir.Ir.stmt list
