(* Normal forms for symbolic reduction values.

   The symbolic evaluator runs the device IR with every input element
   replaced by an opaque symbol x0..x(n-1); geometry (thread ids, loop
   counters, indices) stays concrete. The only operations a correct
   reduction ever applies to a symbolic value are the combining operation
   of its monoid, so symbolic values normalise into one of two
   associativity/commutativity-aware shapes:

   - {b additive} ([+]/[-], int or float): a constant plus a multiset of
     signed symbol occurrences. Equality of two additive forms is exact
     equality of the multisets, i.e. equivalence modulo reassociation and
     commutation; the tree depth is carried along as the reassociation
     certificate (how many rounding steps a float evaluation chains).
   - {b extremal} ([min]/[max]): an optional constant joined with a set
     of symbols. Min/max are idempotent, so the multiset degenerates to a
     set and equality is exact (no rounding certificate needed).

   Anything else applied to a symbolic value — a multiplication, a
   comparison, use as an address or branch condition — is outside the
   reduction monoid and aborts the proof ({!Unsupported}, surfaced as a
   TSYM002 diagnostic by the prover). Mixing the two classes aborts too:
   no single reduction combines through both [+] and [min]. *)

module Ir = Device_ir.Ir
module Value = Gpusim.Value

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

type add_nf = {
  a_const : float;
  a_coeffs : (int * int) list;
      (** symbol id -> signed multiplicity; sorted by id, no zero entries *)
  a_depth : int;  (** combine-tree depth: the reassociation certificate *)
}

type ext_nf = {
  e_max : bool;  (** [true] = max, [false] = min *)
  e_const : float option;
  e_syms : int list;  (** sorted, deduplicated *)
  e_depth : int;
}

type t =
  | Conc of Value.t  (** fully concrete; delegates to {!Gpusim.Value} *)
  | Sym of int  (** input element [x_i], untouched *)
  | Add of add_nf
  | Ext of ext_nf
  | Poison of string
      (** a value the symbolic semantics cannot represent faithfully, e.g.
          the old-value result of an atomic; poisonous only if used *)

let of_value v = Conc v
let sym i = Sym i
let poison why = Poison why

let depth = function
  | Conc _ | Sym _ | Poison _ -> 0
  | Add a -> a.a_depth
  | Ext e -> e.e_depth

let describe = function
  | Conc v -> Value.to_string v
  | Sym i -> Printf.sprintf "x%d" i
  | Add a ->
      Printf.sprintf "sum{%d symbols, const %g, depth %d}"
        (List.fold_left (fun acc (_, k) -> acc + abs k) 0 a.a_coeffs)
        a.a_const a.a_depth
  | Ext e ->
      Printf.sprintf "%s{%d symbols%s, depth %d}"
        (if e.e_max then "max" else "min")
        (List.length e.e_syms)
        (match e.e_const with Some c -> Printf.sprintf ", const %g" c | None -> "")
        e.e_depth
  | Poison why -> "poison(" ^ why ^ ")"

(** Concretise, or abort: [what] names the position requiring a concrete
    value (an index, a branch condition, ...). *)
let to_value ~(what : string) = function
  | Conc v -> v
  | (Sym _ | Add _ | Ext _) as t ->
      unsupported "%s depends on symbolic input data (%s)" what (describe t)
  | Poison why -> unsupported "%s uses an unrepresentable value: %s" what why

(* ------------------------------------------------------------------ *)
(* Additive forms                                                      *)
(* ------------------------------------------------------------------ *)

let rec merge_coeffs xs ys =
  match (xs, ys) with
  | [], r | r, [] -> r
  | ((i, a) :: xt as xl), ((j, b) :: yt as yl) ->
      if i < j then (i, a) :: merge_coeffs xt yl
      else if j < i then (j, b) :: merge_coeffs xl yt
      else
        let c = a + b in
        if c = 0 then merge_coeffs xt yt else (i, c) :: merge_coeffs xt yt

let to_add : t -> add_nf = function
  | Conc v -> { a_const = Value.to_float v; a_coeffs = []; a_depth = 0 }
  | Sym i -> { a_const = 0.0; a_coeffs = [ (i, 1) ]; a_depth = 0 }
  | Add a -> a
  | Ext _ -> unsupported "a min/max partial flows into an additive combine"
  | Poison why -> unsupported "additive combine of an unrepresentable value: %s" why

let scale_add (k : int) (a : add_nf) : add_nf =
  {
    a_const = float_of_int k *. a.a_const;
    a_coeffs = List.map (fun (i, c) -> (i, k * c)) a.a_coeffs;
    a_depth = a.a_depth;
  }

let add2 (a : t) (b : t) : t =
  let x = to_add a and y = to_add b in
  Add
    {
      a_const = x.a_const +. y.a_const;
      a_coeffs = merge_coeffs x.a_coeffs y.a_coeffs;
      a_depth = 1 + max x.a_depth y.a_depth;
    }

let neg (a : t) : t =
  match a with
  | Conc v -> Conc (Value.unop Ir.Neg v)
  | Sym _ | Add _ -> Add (scale_add (-1) (to_add a))
  | Ext _ -> unsupported "negation of a min/max partial"
  | Poison why -> unsupported "negation of an unrepresentable value: %s" why

(* ------------------------------------------------------------------ *)
(* Extremal forms                                                      *)
(* ------------------------------------------------------------------ *)

let to_ext ~(maxi : bool) : t -> ext_nf = function
  | Conc v -> { e_max = maxi; e_const = Some (Value.to_float v); e_syms = []; e_depth = 0 }
  | Sym i -> { e_max = maxi; e_const = None; e_syms = [ i ]; e_depth = 0 }
  | Ext e when e.e_max = maxi -> e
  | Ext _ -> unsupported "a %s partial flows into a %s combine"
               (if maxi then "min" else "max") (if maxi then "max" else "min")
  | Add _ -> unsupported "an additive partial flows into a min/max combine"
  | Poison why -> unsupported "min/max combine of an unrepresentable value: %s" why

let rec merge_syms xs ys =
  match (xs, ys) with
  | [], r | r, [] -> r
  | (x :: xt as xl), (y :: yt as yl) ->
      if x < y then x :: merge_syms xt yl
      else if y < x then y :: merge_syms xl yt
      else x :: merge_syms xt yt

let ext2 ~(maxi : bool) (a : t) (b : t) : t =
  let x = to_ext ~maxi a and y = to_ext ~maxi b in
  let const =
    match (x.e_const, y.e_const) with
    | None, c | c, None -> c
    | Some p, Some q -> Some (if maxi then Float.max p q else Float.min p q)
  in
  Ext
    {
      e_max = maxi;
      e_const = const;
      e_syms = merge_syms x.e_syms y.e_syms;
      e_depth = 1 + max x.e_depth y.e_depth;
    }

(* ------------------------------------------------------------------ *)
(* Generic operations                                                  *)
(* ------------------------------------------------------------------ *)

let check_poison (a : t) (b : t) : unit =
  match (a, b) with
  | Poison why, _ | _, Poison why ->
      unsupported "operand is an unrepresentable value: %s" why
  | _ -> ()

let binop (op : Ir.binop) (a : t) (b : t) : t =
  match (a, b) with
  | Conc x, Conc y -> Conc (Value.binop op x y)
  | _ -> (
      check_poison a b;
      match op with
      | Ir.Add -> add2 a b
      | Ir.Sub -> add2 a (neg b)
      | Ir.Min -> ext2 ~maxi:false a b
      | Ir.Max -> ext2 ~maxi:true a b
      | _ ->
          unsupported "operator %s applied to symbolic input data"
            (Ir.show_binop op))

let unop (op : Ir.unop) (a : t) : t =
  match a with
  | Conc v -> Conc (Value.unop op v)
  | _ -> (
      match op with
      | Ir.Neg -> neg a
      | Ir.Bnot | Ir.Lnot ->
          unsupported "operator %s applied to symbolic input data"
            (Ir.show_unop op))

(** Fold with an atomic operation's combining function. *)
let combine (op : Ir.atomic_op) (acc : t) (v : t) : t =
  match op with
  | Ir.A_add -> binop Ir.Add acc v
  | Ir.A_sub -> binop Ir.Sub acc v
  | Ir.A_min -> binop Ir.Min acc v
  | Ir.A_max -> binop Ir.Max acc v

(* ------------------------------------------------------------------ *)
(* Canonicalisation and comparison                                     *)
(* ------------------------------------------------------------------ *)

(** The proofs assume every input element satisfies [|x| <= domain_bound
    elem]: the extreme representable 32-bit value for integers, the F32
    sentinel magnitude ([3.0e38], just under the type's maximum) that the
    built-in codelets use as min/max identities for floats. *)
let domain_bound = function
  | Ir.F32 -> 3.0e38
  | Ir.I32 | Ir.U32 | Ir.Pred -> 2147483647.0

let canon_add (t : t) : add_nf = to_add t

(** Extremal canonical form with identity-constant elision: a constant
    that can never dominate any in-domain element — [-inf] or [-3.0e38]
    under max, [+inf], [+3.0e38] or [int_max] under min — is dropped, so
    codelets seeded with different renderings of the identity still
    compare equal. *)
let canon_ext ~(maxi : bool) ~(elem : Ir.scalar) (t : t) : ext_nf =
  let e = to_ext ~maxi t in
  let b = domain_bound elem in
  let const =
    match e.e_const with
    | Some c when (if maxi then c <= -.b else c >= b) -> None
    | other -> other
  in
  { e with e_const = const }

let equal_add (x : add_nf) (y : add_nf) : bool =
  x.a_const = y.a_const && x.a_coeffs = y.a_coeffs

let equal_ext (x : ext_nf) (y : ext_nf) : bool =
  x.e_max = y.e_max && x.e_const = y.e_const && x.e_syms = y.e_syms

(** One-line explanation of why two additive forms differ. *)
let explain_add_diff ~(expected : add_nf) ~(got : add_nf) : string =
  if got.a_coeffs <> expected.a_coeffs then begin
    let missing =
      List.filter
        (fun (i, c) -> List.assoc_opt i got.a_coeffs <> Some c)
        expected.a_coeffs
    and extra =
      List.filter
        (fun (i, c) -> List.assoc_opt i expected.a_coeffs <> Some c)
        got.a_coeffs
    in
    let show (i, c) = if c = 1 then Printf.sprintf "x%d" i else Printf.sprintf "%d*x%d" c i in
    let clip l = match l with
      | a :: b :: c :: _ :: _ -> String.concat ", " (List.map show [ a; b; c ]) ^ ", ..."
      | l -> String.concat ", " (List.map show l)
    in
    Printf.sprintf "symbol multiset differs (wrong/missing: {%s}; unexpected: {%s})"
      (clip missing) (clip extra)
  end
  else
    Printf.sprintf "constant offset differs (expected %g, got %g)" expected.a_const
      got.a_const

(** One-line explanation of why two extremal forms differ. *)
let explain_ext_diff ~(expected : ext_nf) ~(got : ext_nf) : string =
  if got.e_syms <> expected.e_syms then
    let missing = List.filter (fun i -> not (List.mem i got.e_syms)) expected.e_syms
    and extra = List.filter (fun i -> not (List.mem i expected.e_syms)) got.e_syms in
    Printf.sprintf "symbol set differs (%d missing, %d unexpected)"
      (List.length missing) (List.length extra)
  else
    Printf.sprintf "dominating constant differs (expected %s, got %s)"
      (match expected.e_const with Some c -> Printf.sprintf "%g" c | None -> "none")
      (match got.e_const with Some c -> Printf.sprintf "%g" c | None -> "none")
