(* Symbolic execution of device-IR programs.

   This is {!Gpusim.Interp}'s twin: the same warp-synchronous SIMT
   schedule (sync-free statements run warp by warp under lane masks;
   statements containing a barrier run block-wide, statement by
   statement), the same shuffle lane-index arithmetic over the 32-lane
   warp state, the same deterministic lane-order atomic serialisation —
   but input elements are opaque {!Term} symbols instead of floats, and
   every execution is exact (no block sampling, no loop extrapolation).

   Because the data is symbolic, the evaluator also carries the dynamic
   hazard state a proof needs:

   - shared memory tracks, per cell, the warp that last wrote it and in
     which barrier epoch; a read (or conflicting plain write) from a
     different warp in the same epoch is an unsynchronized cross-warp
     hazard (TSYM003). Same-warp traffic is exempt, matching the
     warp-synchronous execution model (and {!Device_ir.Race}'s intra-warp
     exemption);
   - global memory tracks the writing block per launch; a read from a
     different block in the same launch is an inter-block hazard
     (TSYM003) — only a kernel-launch boundary orders blocks;
   - atomics from different warps/blocks to the same cell are allowed
     (they serialise by definition), but mixing them with plain accesses
     in the same epoch is not.

   Aborts are typed by diagnostic code: TSYM002 for shapes outside the
   symbolic fragment (data-dependent control flow or addressing,
   non-monoid operators on symbolic data, divergent barriers, OOB
   accesses), TSYM003 for synchronization hazards, TSYM004 for shuffles
   that source a lane outside the 32-lane warp. *)

module Ir = Device_ir.Ir
module Value = Gpusim.Value

exception Abort of { a_code : string; a_message : string }

let abort code fmt =
  Printf.ksprintf (fun s -> raise (Abort { a_code = code; a_message = s })) fmt

let warp_bits = 5
let warp_lanes = 32
let max_threads_per_block = 1024
let loop_iteration_cap = 10_000_000

(* ------------------------------------------------------------------ *)
(* Memory with hazard stamps                                           *)
(* ------------------------------------------------------------------ *)

(* writer stamps: [-1] in the epoch/launch slot means never written; a
   warp/block slot of [-2] means several writers reached the cell through
   atomics (legal until somebody reads it in the same epoch/launch) *)

type gbuffer = {
  g_name : string;
  g_cells : Term.t array;
  g_read_only : bool;
  gw_launch : int array;
  gw_block : int array;
  gw_atomic : bool array;
}

let make_gbuffer ?(read_only = false) ~(name : string) (cells : Term.t array) :
    gbuffer =
  let n = Array.length cells in
  {
    g_name = name;
    g_cells = cells;
    g_read_only = read_only;
    gw_launch = Array.make n (-1);
    gw_block = Array.make n (-1);
    gw_atomic = Array.make n false;
  }

type sbuffer = {
  s_name : string;
  s_ty : Ir.scalar;
  s_cells : Term.t array;
  sw_epoch : int array;
  sw_warp : int array;
  sw_atomic : bool array;
}

type ctx = {
  kname : string;
  params : (string, Value.t) Hashtbl.t;
  globals : (string, gbuffer) Hashtbl.t;
  shared : (string, sbuffer) Hashtbl.t;
  regs : (string, Term.t array) Hashtbl.t;  (** register name -> per-thread *)
  nthreads : int;
  nwarps : int;
  mutable block_idx : int;
  grid_dim : int;
  launch_idx : int;
  mutable epoch : int;  (** barrier epoch within the current block *)
}

let find_global (ctx : ctx) (arr : string) : gbuffer =
  match Hashtbl.find_opt ctx.globals arr with
  | Some b -> b
  | None -> abort "TSYM002" "%s: unbound global array %S" ctx.kname arr

let find_shared (ctx : ctx) (arr : string) : sbuffer =
  match Hashtbl.find_opt ctx.shared arr with
  | Some s -> s
  | None -> abort "TSYM002" "%s: unknown shared array %S" ctx.kname arr

let global_get (ctx : ctx) (b : gbuffer) (i : int) : Term.t =
  if i < 0 || i >= Array.length b.g_cells then
    abort "TSYM002" "%s: global array %s: index %d out of bounds (size %d)"
      ctx.kname b.g_name i (Array.length b.g_cells);
  if
    b.gw_launch.(i) = ctx.launch_idx
    && (b.gw_block.(i) = -2 || b.gw_block.(i) <> ctx.block_idx)
  then
    abort "TSYM003"
      "%s: block %d reads %s[%d] written by another block in the same launch \
       (blocks are only ordered by a kernel-launch boundary)"
      ctx.kname ctx.block_idx b.g_name i;
  b.g_cells.(i)

let note_global_write (ctx : ctx) (b : gbuffer) (i : int) ~(atomic : bool) : unit =
  if b.g_read_only then
    abort "TSYM002" "%s: write to read-only buffer %s" ctx.kname b.g_name;
  if i < 0 || i >= Array.length b.g_cells then
    abort "TSYM002" "%s: global array %s: store index %d out of bounds (size %d)"
      ctx.kname b.g_name i (Array.length b.g_cells);
  if b.gw_launch.(i) <> ctx.launch_idx then begin
    b.gw_launch.(i) <- ctx.launch_idx;
    b.gw_block.(i) <- ctx.block_idx;
    b.gw_atomic.(i) <- atomic
  end
  else if atomic && b.gw_atomic.(i) then begin
    if b.gw_block.(i) <> ctx.block_idx then b.gw_block.(i) <- -2
  end
  else if b.gw_block.(i) = -2 || b.gw_block.(i) <> ctx.block_idx then
    abort "TSYM003"
      "%s: blocks write %s[%d] concurrently without atomics in the same launch"
      ctx.kname b.g_name i
  else b.gw_atomic.(i) <- atomic

let shared_get (ctx : ctx) (s : sbuffer) (w : int) (i : int) : Term.t =
  if i < 0 || i >= Array.length s.s_cells then
    abort "TSYM002" "%s: shared array %s: index %d out of bounds (size %d)"
      ctx.kname s.s_name i (Array.length s.s_cells);
  if s.sw_epoch.(i) = ctx.epoch && (s.sw_warp.(i) = -2 || s.sw_warp.(i) <> w) then
    abort "TSYM003"
      "%s: warp %d reads %s[%d] written by another warp with no intervening \
       __syncthreads()"
      ctx.kname w s.s_name i;
  s.s_cells.(i)

let note_shared_write (ctx : ctx) (s : sbuffer) (w : int) (i : int)
    ~(atomic : bool) : unit =
  if i < 0 || i >= Array.length s.s_cells then
    abort "TSYM002" "%s: shared array %s: store index %d out of bounds (size %d)"
      ctx.kname s.s_name i (Array.length s.s_cells);
  if s.sw_epoch.(i) <> ctx.epoch then begin
    s.sw_epoch.(i) <- ctx.epoch;
    s.sw_warp.(i) <- w;
    s.sw_atomic.(i) <- atomic
  end
  else if atomic && s.sw_atomic.(i) then begin
    if s.sw_warp.(i) <> w then s.sw_warp.(i) <- -2
  end
  else if s.sw_warp.(i) = -2 || s.sw_warp.(i) <> w then
    abort "TSYM003"
      "%s: warps write %s[%d] concurrently with no intervening __syncthreads()"
      ctx.kname s.s_name i
  else s.sw_atomic.(i) <- atomic

(* ------------------------------------------------------------------ *)
(* Registers and expressions                                           *)
(* ------------------------------------------------------------------ *)

let get_reg (ctx : ctx) (tid : int) (r : string) : Term.t =
  match Hashtbl.find_opt ctx.regs r with
  | Some a -> a.(tid)
  | None -> Term.Conc Value.zero  (* interp zero-initialises registers *)

let reg_array (ctx : ctx) (r : string) : Term.t array =
  match Hashtbl.find_opt ctx.regs r with
  | Some a -> a
  | None ->
      let a = Array.make ctx.nthreads (Term.Conc Value.zero) in
      Hashtbl.add ctx.regs r a;
      a

let set_reg (ctx : ctx) (tid : int) (r : string) (v : Term.t) : unit =
  (reg_array ctx r).(tid) <- v

let rec eval (ctx : ctx) (tid : int) (e : Ir.exp) : Term.t =
  match e with
  | Ir.Int n -> Term.Conc (Value.VI n)
  | Ir.Float f -> Term.Conc (Value.VF f)
  | Ir.Bool b -> Term.Conc (Value.VB b)
  | Ir.Reg r -> get_reg ctx tid r
  | Ir.Param p -> (
      match Hashtbl.find_opt ctx.params p with
      | Some v -> Term.Conc v
      | None -> abort "TSYM002" "%s: unbound parameter %S" ctx.kname p)
  | Ir.Special s ->
      Term.Conc
        (Value.VI
           (match s with
           | Ir.Thread_idx -> tid
           | Ir.Block_idx -> ctx.block_idx
           | Ir.Block_dim -> ctx.nthreads
           | Ir.Grid_dim -> ctx.grid_dim
           | Ir.Warp_size -> warp_lanes
           | Ir.Lane_id -> tid land (warp_lanes - 1)
           | Ir.Warp_id -> tid lsr warp_bits))
  | Ir.Unop (op, a) -> Term.unop op (eval ctx tid a)
  | Ir.Binop (op, a, b) -> Term.binop op (eval ctx tid a) (eval ctx tid b)
  | Ir.Select (c, a, b) -> (
      (* `x < y ? x : y`-shaped ternaries are how the TIR codelets spell
         min/max; recognise the shape so a symbolic comparison still
         normalises instead of aborting. Concrete conditions branch
         normally (and lazily — the untaken arm may be out of bounds). *)
      let minmax =
        match c with
        | Ir.Binop (cmp, x, y) when (x = a && y = b) || (x = b && y = a) -> (
            let swapped = x = b && y = a && not (x = a && y = b) in
            match cmp with
            | Ir.Lt | Ir.Le -> Some (if swapped then Ir.Max else Ir.Min)
            | Ir.Gt | Ir.Ge -> Some (if swapped then Ir.Min else Ir.Max)
            | _ -> None)
        | _ -> None
      in
      let branch () =
        if
          Value.to_bool
            (Term.to_value ~what:"a select condition" (eval ctx tid c))
        then eval ctx tid a
        else eval ctx tid b
      in
      match minmax with
      | None -> branch ()
      | Some op -> (
          (* prefer the concrete branch (bit-exact float semantics) when
             the comparison concretises *)
          try branch ()
          with Term.Unsupported _ ->
            Term.binop op (eval ctx tid a) (eval ctx tid b)))

let eval_int (ctx : ctx) (tid : int) ~(what : string) (e : Ir.exp) : int =
  Value.to_int (Term.to_value ~what (eval ctx tid e))

let eval_bool (ctx : ctx) (tid : int) ~(what : string) (e : Ir.exp) : bool =
  Value.to_bool (Term.to_value ~what (eval ctx tid e))

(* ------------------------------------------------------------------ *)
(* Per-warp execution (mirrors Interp.exec_warp)                       *)
(* ------------------------------------------------------------------ *)

let warp_lanes_count (ctx : ctx) (w : int) : int =
  min warp_lanes (ctx.nthreads - (w * warp_lanes))

(* branches executed speculatively for a data-dependent condition must
   not touch memory (or communicate across lanes): their effects cannot
   be predicated on a symbolic condition *)
let rec stmt_writes_memory = function
  | Ir.Store _ | Ir.Atomic _ | Ir.Sync | Ir.Shfl _ -> true
  | Ir.If (_, t, e) ->
      List.exists stmt_writes_memory t || List.exists stmt_writes_memory e
  | Ir.For { body; _ } | Ir.While (_, body) -> List.exists stmt_writes_memory body
  | Ir.Let _ | Ir.Load _ | Ir.Vec_load _ | Ir.Comment _ -> false

let snapshot_regs (ctx : ctx) : (string * Term.t array) list =
  Hashtbl.fold (fun k v acc -> (k, Array.copy v) :: acc) ctx.regs []

(* In place: enclosing statements (the For case, join callers) hold
   references to the live arrays, so the arrays themselves must survive *)
let restore_regs (ctx : ctx) (snap : (string * Term.t array) list) : unit =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (k, v) ->
      Hashtbl.replace seen k ();
      match Hashtbl.find_opt ctx.regs k with
      | Some cur -> Array.blit v 0 cur 0 (Array.length v)
      | None -> Hashtbl.add ctx.regs k (Array.copy v))
    snap;
  Hashtbl.iter
    (fun k cur ->
      if not (Hashtbl.mem seen k) then
        Array.fill cur 0 (Array.length cur) (Term.Conc Value.zero))
    ctx.regs

let rec exec_warp (ctx : ctx) (w : int) (mask : bool array) (s : Ir.stmt) : unit =
  let lanes = warp_lanes_count ctx w in
  let base = w * warp_lanes in
  match s with
  | Ir.Comment _ -> ()
  | Ir.Let (r, e) ->
      let a = reg_array ctx r in
      for l = 0 to lanes - 1 do
        if mask.(l) then a.(base + l) <- eval ctx (base + l) e
      done
  | Ir.Load { dst; space; arr; idx } -> (
      match space with
      | Ir.Global ->
          let b = find_global ctx arr in
          for l = 0 to lanes - 1 do
            if mask.(l) then
              let i = eval_int ctx (base + l) ~what:"a load address" idx in
              set_reg ctx (base + l) dst (global_get ctx b i)
          done
      | Ir.Shared ->
          let sb = find_shared ctx arr in
          for l = 0 to lanes - 1 do
            if mask.(l) then
              let i = eval_int ctx (base + l) ~what:"a load address" idx in
              set_reg ctx (base + l) dst (shared_get ctx sb w i)
          done)
  | Ir.Store { space; arr; idx; v } -> (
      match space with
      | Ir.Global ->
          let b = find_global ctx arr in
          for l = 0 to lanes - 1 do
            if mask.(l) then begin
              let i = eval_int ctx (base + l) ~what:"a store address" idx in
              let tv = eval ctx (base + l) v in
              note_global_write ctx b i ~atomic:false;
              b.g_cells.(i) <- tv
            end
          done
      | Ir.Shared ->
          let sb = find_shared ctx arr in
          for l = 0 to lanes - 1 do
            if mask.(l) then begin
              let i = eval_int ctx (base + l) ~what:"a store address" idx in
              let tv = eval ctx (base + l) v in
              note_shared_write ctx sb w i ~atomic:false;
              sb.s_cells.(i) <- tv
            end
          done)
  | Ir.Vec_load { dsts; arr; base = vbase } ->
      let b = find_global ctx arr in
      let width = List.length dsts in
      for l = 0 to lanes - 1 do
        if mask.(l) then begin
          let base_i = eval_int ctx (base + l) ~what:"a vector-load base" vbase in
          if width > 0 && base_i mod width <> 0 then
            abort "TSYM002" "%s: misaligned vector load at element %d (width %d)"
              ctx.kname base_i width;
          List.iteri
            (fun j dst -> set_reg ctx (base + l) dst (global_get ctx b (base_i + j)))
            dsts
        end
      done
  | Ir.Atomic { dst; space; op; scope = _; arr; idx; v } ->
      (* lanes apply in lane order: deterministic serialisation *)
      let idxs = Array.make warp_lanes 0 and vals = Array.make warp_lanes (Term.Conc Value.zero) in
      for l = 0 to lanes - 1 do
        if mask.(l) then begin
          idxs.(l) <- eval_int ctx (base + l) ~what:"an atomic address" idx;
          vals.(l) <- eval ctx (base + l) v
        end
      done;
      for l = 0 to lanes - 1 do
        if mask.(l) then begin
          let i = idxs.(l) in
          (match space with
          | Ir.Global ->
              let b = find_global ctx arr in
              if i < 0 || i >= Array.length b.g_cells then
                abort "TSYM002"
                  "%s: global array %s: atomic index %d out of bounds (size %d)"
                  ctx.kname b.g_name i (Array.length b.g_cells);
              note_global_write ctx b i ~atomic:true;
              b.g_cells.(i) <- Term.combine op b.g_cells.(i) vals.(l)
          | Ir.Shared ->
              let sb = find_shared ctx arr in
              if i < 0 || i >= Array.length sb.s_cells then
                abort "TSYM002"
                  "%s: shared array %s: atomic index %d out of bounds (size %d)"
                  ctx.kname sb.s_name i (Array.length sb.s_cells);
              note_shared_write ctx sb w i ~atomic:true;
              sb.s_cells.(i) <- Term.combine op sb.s_cells.(i) vals.(l));
          match dst with
          | Some r ->
              (* the pre-update value is interleaving-dependent on real
                 hardware; representing it would let a proof depend on the
                 simulator's serialisation order *)
              set_reg ctx (base + l) r
                (Term.poison "old value returned by an atomic operation")
          | None -> ()
        end
      done
  | Ir.Shfl { dst; mode; v; lane; width } ->
      if width < 1 || width > warp_lanes then
        abort "TSYM004"
          "%s: shuffle width %d exceeds the %d-lane warp (sub-warp state is \
           undefined beyond the hardware warp)"
          ctx.kname width warp_lanes;
      (* every resident lane publishes v; missing tail lanes publish zero *)
      let publish =
        Array.init warp_lanes (fun l ->
            if l < lanes then eval ctx (base + l) v else Term.Conc Value.zero)
      in
      for l = 0 to lanes - 1 do
        if mask.(l) then begin
          let delta = eval_int ctx (base + l) ~what:"a shuffle lane operand" lane in
          let sub = l - (l mod width) in
          let src =
            match mode with
            | Ir.Shfl_down -> if (l mod width) + delta < width then l + delta else l
            | Ir.Shfl_up -> if (l mod width) - delta >= 0 then l - delta else l
            | Ir.Shfl_xor ->
                let p = l lxor delta in
                if p - sub < width && p < warp_lanes then p else l
            | Ir.Shfl_idx -> sub + (delta mod width)
          in
          if src < 0 || src >= warp_lanes then
            abort "TSYM004"
              "%s: lane %d of a %s shuffle sources lane %d, outside the \
               %d-lane warp"
              ctx.kname l
              (Ir.show_shuffle_mode mode)
              src warp_lanes;
          set_reg ctx (base + l) dst publish.(src)
        end
      done
  | Ir.Sync ->
      abort "TSYM002" "%s: __syncthreads() under divergent control flow"
        ctx.kname
  | Ir.If (cond, then_, else_) ->
      let tmask = Array.make warp_lanes false in
      let emask = Array.make warp_lanes false in
      let smask = Array.make warp_lanes false in
      let n_t = ref 0 and n_e = ref 0 and n_s = ref 0 in
      for l = 0 to lanes - 1 do
        if mask.(l) then
          match
            Term.to_value ~what:"a branch condition"
              (eval ctx (base + l) cond)
          with
          | v ->
              if Value.to_bool v then begin
                tmask.(l) <- true;
                incr n_t
              end
              else begin
                emask.(l) <- true;
                incr n_e
              end
          | exception Term.Unsupported _ ->
              smask.(l) <- true;
              incr n_s
      done;
      if !n_t > 0 then List.iter (exec_warp ctx w tmask) then_;
      if !n_e > 0 then List.iter (exec_warp ctx w emask) else_;
      if !n_s > 0 then join_branches ctx w smask cond then_ else_
  | Ir.For { var; init; cond; step; body } ->
      let a = reg_array ctx var in
      for l = 0 to lanes - 1 do
        if mask.(l) then a.(base + l) <- eval ctx (base + l) init
      done;
      let live = Array.copy mask in
      let iter = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let n_live = ref 0 in
        for l = 0 to lanes - 1 do
          if live.(l) then
            if eval_bool ctx (base + l) ~what:"a loop condition" cond then
              incr n_live
            else live.(l) <- false
        done;
        if !n_live = 0 then continue_ := false
        else begin
          List.iter (exec_warp ctx w live) body;
          for l = 0 to lanes - 1 do
            if live.(l) then a.(base + l) <- eval ctx (base + l) step
          done;
          incr iter;
          if !iter > loop_iteration_cap then
            abort "TSYM002" "%s: loop exceeded %d iterations" ctx.kname
              loop_iteration_cap
        end
      done
  | Ir.While (cond, body) ->
      let live = Array.copy mask in
      let iter = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let n_live = ref 0 in
        for l = 0 to lanes - 1 do
          if live.(l) then
            if eval_bool ctx (base + l) ~what:"a loop condition" cond then
              incr n_live
            else live.(l) <- false
        done;
        if !n_live = 0 then continue_ := false
        else begin
          List.iter (exec_warp ctx w live) body;
          incr iter;
          if !iter > loop_iteration_cap then
            abort "TSYM002" "%s: while loop exceeded %d iterations" ctx.kname
              loop_iteration_cap
        end
      done

(* A branch whose condition depends on symbolic input cannot pick a side,
   but the guarded-comparison idiom the codelets use for min/max
   (`if (x < acc) { acc = x }`-shaped statement lowering of ternaries) is
   still decidable: execute both branches speculatively on register
   snapshots, then join each register that diverged. A join succeeds when
   the two values are exactly the condition's compared operands — the
   result is their min/max — and otherwise leaves {!Term.Poison}, which
   aborts the proof only if the register is ever read again (dead branch
   temporaries are re-assigned before use). Branches that write memory or
   shuffle cannot be speculated and abort. *)
and join_branches (ctx : ctx) (w : int) (smask : bool array) (cond : Ir.exp)
    (then_ : Ir.stmt list) (else_ : Ir.stmt list) : unit =
  let lanes = warp_lanes_count ctx w in
  let base = w * warp_lanes in
  if List.exists stmt_writes_memory then_ || List.exists stmt_writes_memory else_
  then
    abort "TSYM002"
      "%s: a memory write (or shuffle) under a branch on symbolic input data"
      ctx.kname;
  (* the comparison shape decides which operand wins in the then-branch *)
  let then_is_max =
    match cond with
    | Ir.Binop ((Ir.Lt | Ir.Le), _, _) -> Some false
    | Ir.Binop ((Ir.Gt | Ir.Ge), _, _) -> Some true
    | _ -> None
  in
  let operands =
    match cond with
    | Ir.Binop (_, ca, cb) ->
        Array.init warp_lanes (fun l ->
            if smask.(l) then
              try Some (eval ctx (base + l) ca, eval ctx (base + l) cb)
              with Term.Unsupported _ -> None
            else None)
    | _ -> Array.make warp_lanes None
  in
  let snap = snapshot_regs ctx in
  List.iter (exec_warp ctx w smask) then_;
  let then_state = snapshot_regs ctx in
  restore_regs ctx snap;
  List.iter (exec_warp ctx w smask) else_;
  (* registers now hold the else-state; join against the then-state *)
  let names =
    List.sort_uniq compare
      (List.map fst then_state
      @ Hashtbl.fold (fun k _ acc -> k :: acc) ctx.regs [])
  in
  List.iter
    (fun name ->
      let then_arr = List.assoc_opt name then_state in
      let now = reg_array ctx name in
      for l = 0 to lanes - 1 do
        if smask.(l) then begin
          let vt =
            match then_arr with
            | Some a -> a.(base + l)
            | None -> Term.Conc Value.zero
          in
          let ve = now.(base + l) in
          if vt <> ve then
            now.(base + l) <-
              (match (then_is_max, operands.(l)) with
              | Some maxi, Some (ta, tb) when vt = ta && ve = tb ->
                  Term.binop (if maxi then Ir.Max else Ir.Min) ta tb
              | Some maxi, Some (ta, tb) when vt = tb && ve = ta ->
                  Term.binop (if maxi then Ir.Min else Ir.Max) ta tb
              | _ ->
                  Term.poison
                    "a register joined across a branch on symbolic input data")
        end
      done)
    names

(* ------------------------------------------------------------------ *)
(* Block-wide execution (barrier-aware; mirrors Interp)                *)
(* ------------------------------------------------------------------ *)

let full_mask = Array.make warp_lanes true

let rec stmt_has_sync (s : Ir.stmt) : bool =
  match s with
  | Ir.Sync -> true
  | Ir.If (_, t, e) -> List.exists stmt_has_sync t || List.exists stmt_has_sync e
  | Ir.For { body; _ } -> List.exists stmt_has_sync body
  | Ir.While (_, body) -> List.exists stmt_has_sync body
  | Ir.Let _ | Ir.Load _ | Ir.Store _ | Ir.Vec_load _ | Ir.Atomic _ | Ir.Shfl _
  | Ir.Comment _ ->
      false

let barrier (ctx : ctx) : unit = ctx.epoch <- ctx.epoch + 1

(* a condition guarding a barrier must be block-uniform, or the barrier
   deadlocks; symbolically it must also be concrete *)
let check_uniform_cond (ctx : ctx) (e : Ir.exp) : bool =
  let what = "a barrier-guarding condition" in
  let v0 = eval_bool ctx 0 ~what e in
  for t = 1 to ctx.nthreads - 1 do
    if eval_bool ctx t ~what e <> v0 then
      abort "TSYM002"
        "%s: non-uniform condition guards a barrier (thread %d disagrees): the \
         barrier deadlocks"
        ctx.kname t
  done;
  v0

let rec exec_block_stmt (ctx : ctx) (s : Ir.stmt) : unit =
  if not (stmt_has_sync s) then
    for w = 0 to ctx.nwarps - 1 do
      exec_warp ctx w full_mask s
    done
  else
    match s with
    | Ir.Sync -> barrier ctx
    | Ir.If (cond, then_, else_) ->
        if check_uniform_cond ctx cond then List.iter (exec_block_stmt ctx) then_
        else List.iter (exec_block_stmt ctx) else_
    | Ir.For { var; init; cond; step; body } ->
        let a = reg_array ctx var in
        for t = 0 to ctx.nthreads - 1 do
          a.(t) <- eval ctx t init
        done;
        let iter = ref 0 in
        let continue_ = ref true in
        while !continue_ do
          if check_uniform_cond ctx cond then begin
            List.iter (exec_block_stmt ctx) body;
            for t = 0 to ctx.nthreads - 1 do
              a.(t) <- eval ctx t step
            done;
            incr iter;
            if !iter > loop_iteration_cap then
              abort "TSYM002" "%s: loop exceeded %d iterations" ctx.kname
                loop_iteration_cap
          end
          else continue_ := false
        done
    | Ir.While (cond, body) ->
        let iter = ref 0 in
        let continue_ = ref true in
        while !continue_ do
          if check_uniform_cond ctx cond then begin
            List.iter (exec_block_stmt ctx) body;
            incr iter;
            if !iter > loop_iteration_cap then
              abort "TSYM002" "%s: while loop exceeded %d iterations" ctx.kname
                loop_iteration_cap
          end
          else continue_ := false
        done
    | Ir.Let _ | Ir.Load _ | Ir.Store _ | Ir.Vec_load _ | Ir.Atomic _
    | Ir.Shfl _ | Ir.Comment _ ->
        assert false

(* ------------------------------------------------------------------ *)
(* Kernel launch                                                       *)
(* ------------------------------------------------------------------ *)

let run_kernel (k : Ir.kernel) ~(grid : int) ~(block : int)
    ~(shared_elems : int) ~(globals : gbuffer list)
    ~(params : Value.t list) ~(launch_idx : int) : unit =
  if grid < 1 then abort "TSYM002" "%s: empty grid" k.Ir.k_name;
  if block < 1 || block > max_threads_per_block then
    abort "TSYM002" "%s: block size %d out of range [1, %d]" k.Ir.k_name block
      max_threads_per_block;
  if List.length globals <> List.length k.Ir.k_arrays then
    abort "TSYM002" "%s: expected %d array bindings, got %d" k.Ir.k_name
      (List.length k.Ir.k_arrays) (List.length globals);
  if List.length params <> List.length k.Ir.k_params then
    abort "TSYM002" "%s: expected %d scalar parameters, got %d" k.Ir.k_name
      (List.length k.Ir.k_params) (List.length params);
  let globals_tbl = Hashtbl.create 8 in
  List.iter2
    (fun (name, _ty) b -> Hashtbl.replace globals_tbl name b)
    k.Ir.k_arrays globals;
  let params_tbl = Hashtbl.create 8 in
  List.iter2
    (fun (name, _ty) v -> Hashtbl.replace params_tbl name v)
    k.Ir.k_params params;
  let shared_tbl = Hashtbl.create 4 in
  List.iter
    (fun (d : Ir.shared_decl) ->
      let n =
        match d.Ir.sh_size with
        | Ir.Static_size n -> n
        | Ir.Dynamic_size -> shared_elems
      in
      let n = max n 1 in
      Hashtbl.replace shared_tbl d.Ir.sh_name
        {
          s_name = d.Ir.sh_name;
          s_ty = d.Ir.sh_ty;
          s_cells = Array.make n (Term.Conc (Value.of_float d.Ir.sh_ty 0.0));
          sw_epoch = Array.make n (-1);
          sw_warp = Array.make n (-1);
          sw_atomic = Array.make n false;
        })
    k.Ir.k_shared;
  let nwarps = (block + warp_lanes - 1) / warp_lanes in
  let ctx =
    {
      kname = k.Ir.k_name;
      params = params_tbl;
      globals = globals_tbl;
      shared = shared_tbl;
      regs = Hashtbl.create 32;
      nthreads = block;
      nwarps;
      block_idx = 0;
      grid_dim = grid;
      launch_idx;
      epoch = 0;
    }
  in
  for b = 0 to grid - 1 do
    ctx.block_idx <- b;
    ctx.epoch <- 0;
    Hashtbl.reset ctx.regs;
    Hashtbl.iter
      (fun _ (s : sbuffer) ->
        Array.fill s.s_cells 0 (Array.length s.s_cells)
          (Term.Conc (Value.of_float s.s_ty 0.0));
        Array.fill s.sw_epoch 0 (Array.length s.sw_epoch) (-1);
        Array.fill s.sw_warp 0 (Array.length s.sw_warp) (-1);
        Array.fill s.sw_atomic 0 (Array.length s.sw_atomic) false)
      ctx.shared;
    List.iter (exec_block_stmt ctx) k.Ir.k_body
  done

(* ------------------------------------------------------------------ *)
(* Whole-program execution (mirrors Runner.run_compiled_raw)           *)
(* ------------------------------------------------------------------ *)

let first_tunables (p : Ir.program) : (string * int) list =
  List.map
    (fun (name, cands) ->
      match cands with
      | v :: _ -> (name, v)
      | [] -> abort "TSYM002" "program %s: tunable %S has no candidates" p.Ir.p_name name)
    p.Ir.p_tunables

(** Symbolically execute [p] on a fully symbolic input of [n] elements
    (element [i] is {!Term.Sym}[ i]) and return the term left in cell 0
    of the result buffer. Geometry is concrete: [tunables] defaults to
    the first candidate of each tunable. Execution is always exact —
    every block of every launch runs.
    @raise Abort on any shape, hazard or shuffle violation. *)
let run_program ?(tunables : (string * int) list option) ~(n : int)
    (p : Ir.program) : Term.t =
  if n < 1 then abort "TSYM002" "program %s: empty input" p.Ir.p_name;
  let tunables =
    match tunables with Some t -> t | None -> first_tunables p
  in
  let ev_hexp h =
    try Ir.eval_hexp ~n ~tunables h
    with Invalid_argument msg -> abort "TSYM002" "program %s: %s" p.Ir.p_name msg
  in
  let buffers : (string, gbuffer) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.add buffers "input"
    (make_gbuffer ~read_only:true ~name:"input" (Array.init n Term.sym));
  Hashtbl.add buffers "output"
    (make_gbuffer ~name:"output" [| Term.Conc (Value.of_float p.Ir.p_elem 0.0) |]);
  List.iter
    (fun (b : Ir.buffer) ->
      let size = ev_hexp b.Ir.buf_size in
      if size < 1 then
        abort "TSYM002" "program %s: buffer %S has non-positive size %d"
          p.Ir.p_name b.Ir.buf_name size;
      let init = match b.Ir.buf_init with Some v -> v | None -> 0.0 in
      Hashtbl.add buffers b.Ir.buf_name
        (make_gbuffer ~name:b.Ir.buf_name
           (Array.make size (Term.Conc (Value.of_float b.Ir.buf_ty init)))))
    p.Ir.p_buffers;
  let find_buffer name =
    match Hashtbl.find_opt buffers name with
    | Some b -> b
    | None -> abort "TSYM002" "program %s: unbound buffer %S" p.Ir.p_name name
  in
  (try
     List.iteri
       (fun i (ln : Ir.launch) ->
         let k = Ir.find_kernel p ln.Ir.ln_kernel in
         let grid = ev_hexp ln.Ir.ln_grid in
         let block = ev_hexp ln.Ir.ln_block in
         let shared_elems = ev_hexp ln.Ir.ln_shared_elems in
         let globals = ref [] and params = ref [] in
         List.iter
           (fun (a : Ir.harg) ->
             match a with
             | Ir.Arg_buffer b -> globals := find_buffer b :: !globals
             | Ir.Arg_scalar h -> params := Value.VI (ev_hexp h) :: !params)
           ln.Ir.ln_args;
         run_kernel k ~grid ~block ~shared_elems
           ~globals:(List.rev !globals) ~params:(List.rev !params)
           ~launch_idx:i)
       p.Ir.p_launches
   with
  | Term.Unsupported msg ->
      abort "TSYM002" "program %s: %s" p.Ir.p_name msg
  | Value.Trap msg -> abort "TSYM002" "program %s: %s" p.Ir.p_name msg
  | Invalid_argument msg -> abort "TSYM002" "program %s: %s" p.Ir.p_name msg);
  let result = find_buffer p.Ir.p_result in
  if Array.length result.g_cells = 0 then
    abort "TSYM002" "program %s: empty result buffer" p.Ir.p_name;
  result.g_cells.(0)
