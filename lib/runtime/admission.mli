(** Deadline-aware admission control, load shedding and brownout for
    the reduction service.

    An open-loop replay driver on a {e virtual} clock: arrivals come
    pre-stamped with Poisson timestamps ([Trace.arrivals]), a bounded
    two-priority queue fronts a single virtual server whose occupancy is
    the service's simulated cost (kernel time plus a hit/miss model of
    the cold plan/tune path), and three independent protection valves
    keep the service predictable past saturation:

    - {b admission}: a full queue sheds per {!shed_policy}; interactive
      arrivals may displace queued batch work, never the reverse;
    - {b deadlines}: work that cannot finish by its deadline is dropped
      at dequeue, and the remaining budget rides into
      [Service.submit_result ?deadline_us] so mid-flight expiry stops
      retries and redundant executions;
    - {b brownout}: a hysteretic controller watches queue depth and the
      p95 of recent completion latencies and walks
      [Service.set_brownout]'s degradation ladder.

    Everything is deterministic: one seed and config reproduce the same
    admissions, sheds, deadline verdicts and brownout transitions on
    every machine. *)

(** Requests at or under [a_interactive_max] elements are latency-
    sensitive; everything larger is throughput work the queue may shed
    first. *)
type priority = Interactive | Batch

type shed_policy =
  | Reject_newest  (** shed the arriving request (tail drop) *)
  | Reject_oldest  (** shed the longest-queued sheddable request *)
  | Cost_aware
      (** shed whichever of {newcomer, queued work} predicts costliest;
          cold plan-cache buckets ({!Plan_cache.mem}) predict the cold
          plan/tune sweep, warm buckets a small constant *)

(** CLI-facing names: ["reject-newest"], ["reject-oldest"],
    ["cost-aware"]. *)
val shed_policy_name : shed_policy -> string

val shed_policy_of_string : string -> shed_policy option

type config = {
  a_queue_cap : int;  (** bounded queue capacity, both classes together *)
  a_shed_policy : shed_policy;
  a_deadline_us : float;  (** per-request budget, virtual microseconds *)
  a_enforce_deadline : bool;
      (** when [false], deadlines are measured (for goodput/violation
          accounting) but never acted on — the unprotected baseline *)
  a_brownout : bool;  (** run the brownout controller *)
  a_interactive_max : int;  (** sizes at or under this are interactive *)
  a_cost_hit_us : float;  (** virtual dispatch cost on a warm bucket *)
  a_cost_miss_us : float;  (** virtual cost of a cold plan/tune sweep *)
}

(** Queue of 32, reject-newest, 50ms deadline enforced, brownout off,
    interactive at or under 64K elements, 5us hit / 20ms miss costs. *)
val default : config

(** [cfg] with every protection valve off: an effectively unbounded
    queue, deadlines measured but not enforced, no brownout. The
    baseline that collapses past saturation. *)
val unprotected : config -> config

val priority_of : config -> int -> priority

type summary = {
  a_offered : int;  (** arrivals presented to the queue *)
  a_admitted : int;  (** entered the queue (including later-displaced) *)
  a_shed : int;  (** shed at admission (newcomer or displaced) *)
  a_expired : int;  (** dropped at dequeue: deadline infeasible *)
  a_completed : int;  (** served with [Ok] *)
  a_deadline_errors : int;  (** served with [Error (Deadline_exceeded _)] *)
  a_failed : int;  (** served with any other [Error] *)
  a_goodput : int;  (** [Ok] completions within their deadline *)
  a_goodput_rps : float;  (** goodput per virtual second of makespan *)
  a_violations : int;  (** [Ok] completions past their deadline *)
  a_interactive_violations : int;
  a_p50_us : float;  (** arrival-to-completion latency, virtual *)
  a_p95_us : float;
  a_makespan_us : float;  (** virtual time from first arrival to drain *)
  a_max_brownout : int;  (** highest brownout level the replay reached *)
}

(** Replay timestamped arrivals (from [Trace.arrivals]) through the
    admission queue into [svc]. Sizes at or under [dense_upto] (default
    0) materialize as dense inputs exactly as [Trace.replay] does. The
    brownout ladder is restored to 0 after the drain when the controller
    ran. Queue waits, admissions, sheds and deadline events are recorded
    in the service's [Stats] — a replay that never sheds, expires or
    browns out leaves the text report unchanged.
    @raise Invalid_argument on a non-positive queue capacity or
    deadline, or a negative cost model. *)
val replay :
  ?config:config ->
  ?dense_upto:int ->
  Service.t ->
  (float * (Gpusim.Arch.t * int)) list ->
  summary

val pp_summary : Format.formatter -> summary -> unit
