(* Deadline-aware admission control and load shedding.

   Everything here runs on a virtual clock. An open-loop trace
   ([Trace.arrivals]) stamps each request with a Poisson arrival time in
   virtual microseconds; the replay walks those arrivals through a
   bounded two-priority queue in front of a single virtual server whose
   occupancy is the service's own simulated cost (kernel time plus a
   hit/miss model of the cold plan/tune path). Determinism is the whole
   point: the same seed and config produce the same admissions, sheds,
   deadline verdicts and brownout transitions on every machine, which is
   what lets CI assert on them.

   Protection is three independent valves:
   - admission: a full queue sheds per policy (newest, oldest, or
     cost-aware using [Plan_cache.mem] to predict cold buckets), and
     interactive arrivals may displace queued batch work;
   - deadlines: a request that cannot finish by its deadline is dropped
     at dequeue (no work wasted), and the remaining budget rides into
     [Service.submit_result ?deadline_us] so mid-flight expiry stops
     retries and redundant executions;
   - brownout: a hysteretic controller watches queue depth and the p95
     of recent completion latencies and walks [Service.set_brownout]'s
     ladder up and down, shedding optional work before the queue melts.

   With all three off ([unprotected]) the same replay models a naive
   service: everything is admitted, nothing is shed, and goodput
   (completions within deadline) collapses past saturation. *)

module R = Gpusim.Runner
module P = Synthesis.Planner

type priority = Interactive | Batch

type shed_policy = Reject_newest | Reject_oldest | Cost_aware

let shed_policy_name = function
  | Reject_newest -> "reject-newest"
  | Reject_oldest -> "reject-oldest"
  | Cost_aware -> "cost-aware"

let shed_policy_of_string = function
  | "reject-newest" -> Some Reject_newest
  | "reject-oldest" -> Some Reject_oldest
  | "cost-aware" -> Some Cost_aware
  | _ -> None

type config = {
  a_queue_cap : int;
  a_shed_policy : shed_policy;
  a_deadline_us : float;
  a_enforce_deadline : bool;
  a_brownout : bool;
  a_interactive_max : int;
  a_cost_hit_us : float;
  a_cost_miss_us : float;
}

let default =
  {
    a_queue_cap = 32;
    a_shed_policy = Reject_newest;
    a_deadline_us = 50_000.0;
    a_enforce_deadline = true;
    a_brownout = false;
    (* the paper sweep's small half: everything at or under 64K is
       latency-sensitive, the big crunches are batch *)
    a_interactive_max = 65536;
    (* virtual cost of the paths the simulated kernel time does not
       cover: a warm dispatch is microseconds, a cold plan/tune sweep is
       tens of milliseconds *)
    a_cost_hit_us = 5.0;
    a_cost_miss_us = 20_000.0;
  }

let unprotected cfg =
  {
    cfg with
    a_queue_cap = max cfg.a_queue_cap 1_000_000;
    a_enforce_deadline = false;
    a_brownout = false;
  }

let priority_of (cfg : config) (n : int) : priority =
  if n <= cfg.a_interactive_max then Interactive else Batch

(* one queued request; [i_cost_us] is the predicted virtual cost used by
   the cost-aware policy and the dequeue-time feasibility check *)
type item = {
  i_arrival : float;
  i_deadline_at : float;
  i_prio : priority;
  i_arch : Gpusim.Arch.t;
  i_n : int;
  i_cost_us : float;
}

type summary = {
  a_offered : int;
  a_admitted : int;
  a_shed : int;
  a_expired : int;  (* admitted but dropped at dequeue: infeasible deadline *)
  a_completed : int;  (* served with Ok *)
  a_deadline_errors : int;  (* served with Error Deadline_exceeded *)
  a_failed : int;  (* served with any other Error *)
  a_goodput : int;  (* Ok completions within their deadline *)
  a_goodput_rps : float;  (* goodput per virtual second of makespan *)
  a_violations : int;  (* Ok completions past their deadline *)
  a_interactive_violations : int;
  a_p50_us : float;  (* arrival-to-completion latency, virtual *)
  a_p95_us : float;
  a_makespan_us : float;  (* virtual time from first arrival to drain *)
  a_max_brownout : int;
}

(* percentile over a copy, nearest-rank; mirrors Stats' convention *)
let percentile (xs : float list) (p : float) : float =
  match xs with
  | [] -> 0.0
  | _ ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      let idx = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
      a.(max 0 (min (n - 1) idx))

let predicted_cost_us (cfg : config) (svc : Service.t)
    (arch : Gpusim.Arch.t) (n : int) : float =
  let p = Service.planner svc in
  let k =
    Plan_cache.key ~arch:arch.Gpusim.Arch.name ~op:(P.op_name p)
      ~elem:(P.elem_name p) ~n
  in
  (* a peek, not a lookup: predicting must not perturb LRU recency *)
  if Plan_cache.mem (Service.cache svc) k then cfg.a_cost_hit_us
  else cfg.a_cost_miss_us

(* ------------------------------------------------------------------ *)
(* The brownout controller                                             *)
(* ------------------------------------------------------------------ *)

(* Hysteresis by construction: raise and lower watch different
   thresholds, the controller moves one ladder step at a time, and it
   only reconsiders every [ctl_period] completions — a brief spike
   cannot saw the ladder up and down. *)
let ctl_period = 16
let ctl_window = 64

type controller = {
  ctl_cfg : config;
  ctl_svc : Service.t;
  ctl_ring : float array;  (* last [ctl_window] completion latencies *)
  mutable ctl_filled : int;
  mutable ctl_since : int;  (* completions since the last decision *)
  mutable ctl_max : int;  (* highest level this replay reached *)
}

let controller (cfg : config) (svc : Service.t) : controller =
  {
    ctl_cfg = cfg;
    ctl_svc = svc;
    ctl_ring = Array.make ctl_window 0.0;
    ctl_filled = 0;
    ctl_since = 0;
    ctl_max = Service.brownout_level svc;
  }

let ctl_observe (c : controller) ~(depth : int) (latency_us : float) : unit =
  if c.ctl_cfg.a_brownout then begin
    c.ctl_ring.(c.ctl_filled mod ctl_window) <- latency_us;
    c.ctl_filled <- c.ctl_filled + 1;
    c.ctl_since <- c.ctl_since + 1;
    if c.ctl_since >= ctl_period then begin
      c.ctl_since <- 0;
      let window = min c.ctl_filled ctl_window in
      let recent = Array.to_list (Array.sub c.ctl_ring 0 window) in
      let p95 = percentile recent 95.0 in
      let cap = c.ctl_cfg.a_queue_cap in
      let level = Service.brownout_level c.ctl_svc in
      let deadline = c.ctl_cfg.a_deadline_us in
      if
        (depth > cap * 3 / 4 || p95 > deadline)
        && level < Service.max_brownout
      then begin
        Service.set_brownout c.ctl_svc (level + 1);
        c.ctl_max <- max c.ctl_max (level + 1)
      end
      else if depth < cap / 4 && p95 < deadline /. 2.0 && level > 0 then
        Service.set_brownout c.ctl_svc (level - 1)
    end
  end

(* ------------------------------------------------------------------ *)
(* The bounded two-priority queue                                      *)
(* ------------------------------------------------------------------ *)

(* FIFO per priority, interactive drains first. Capacities are small
   (tens to hundreds), so list-backed queues with O(n) eviction keep the
   policies trivially auditable. *)
type queue = {
  q_cfg : config;
  mutable q_interactive : item list;  (* oldest first *)
  mutable q_batch : item list;
}

let queue (cfg : config) : queue =
  { q_cfg = cfg; q_interactive = []; q_batch = [] }

let depth (q : queue) : int =
  List.length q.q_interactive + List.length q.q_batch

let enqueue (q : queue) (it : item) : unit =
  match it.i_prio with
  | Interactive -> q.q_interactive <- q.q_interactive @ [ it ]
  | Batch -> q.q_batch <- q.q_batch @ [ it ]

let dequeue (q : queue) : item option =
  match q.q_interactive with
  | it :: rest ->
      q.q_interactive <- rest;
      Some it
  | [] -> (
      match q.q_batch with
      | it :: rest ->
          q.q_batch <- rest;
          Some it
      | [] -> None)

(* drop the last element (the newest) of a list *)
let drop_newest (l : 'a list) : 'a * 'a list =
  match List.rev l with
  | [] -> invalid_arg "drop_newest: empty"
  | x :: rev_rest -> (x, List.rev rev_rest)

(* remove the costliest item (first-of-equals, i.e. oldest on ties) *)
let drop_costliest (l : item list) : item * item list =
  match l with
  | [] -> invalid_arg "drop_costliest: empty"
  | hd :: _ ->
      let victim =
        List.fold_left
          (fun best it -> if it.i_cost_us > best.i_cost_us then it else best)
          hd l
      in
      let removed = ref false in
      let rest =
        List.filter
          (fun it ->
            if (not !removed) && it == victim then begin
              removed := true;
              false
            end
            else true)
          l
      in
      (victim, rest)

(* Admit [it] or shed something. Returns the shed item, if any. Batch
   work never displaces queued interactive work; an interactive arrival
   may displace queued batch work under any policy. *)
let offer (q : queue) (it : item) : item option =
  let cfg = q.q_cfg in
  if depth q < cfg.a_queue_cap then begin
    enqueue q it;
    None
  end
  else
    let displace_batch picker =
      let victim, rest = picker q.q_batch in
      q.q_batch <- rest;
      enqueue q it;
      Some victim
    in
    match cfg.a_shed_policy with
    | Reject_newest ->
        (* the newcomer is the newest — unless its priority outranks
           queued batch work, in which case the newest batch item goes *)
        if it.i_prio = Interactive && q.q_batch <> [] then
          displace_batch drop_newest
        else Some it
    | Reject_oldest ->
        (* drop-head: the oldest queued work has waited longest and is
           most likely to miss its deadline anyway *)
        let drop_oldest = function
          | [] -> invalid_arg "drop_oldest: empty"
          | x :: rest -> (x, rest)
        in
        if q.q_batch <> [] then displace_batch drop_oldest
        else if it.i_prio = Interactive && q.q_interactive <> [] then begin
          let victim, rest = drop_oldest q.q_interactive in
          q.q_interactive <- rest;
          enqueue q it;
          Some victim
        end
        else Some it
    | Cost_aware ->
        (* shed the predicted-costliest among the newcomer and the
           queued work it may displace; ties keep the queue (FIFO bias) *)
        let pool =
          match it.i_prio with
          | Interactive -> q.q_batch @ q.q_interactive
          | Batch -> q.q_batch
        in
        let costliest =
          List.fold_left (fun m c -> max m c.i_cost_us) 0.0 pool
        in
        if pool <> [] && costliest > it.i_cost_us then begin
          let from_batch =
            List.exists (fun c -> c.i_cost_us = costliest) q.q_batch
          in
          if from_batch then displace_batch drop_costliest
          else begin
            let victim, rest = drop_costliest q.q_interactive in
            q.q_interactive <- rest;
            enqueue q it;
            Some victim
          end
        end
        else Some it

(* ------------------------------------------------------------------ *)
(* The open-loop replay                                                *)
(* ------------------------------------------------------------------ *)

let validate (cfg : config) : unit =
  if cfg.a_queue_cap < 1 then
    invalid_arg "Admission.replay: queue_cap must be positive";
  if Float.is_nan cfg.a_deadline_us || cfg.a_deadline_us <= 0.0 then
    invalid_arg "Admission.replay: deadline_us must be positive";
  if cfg.a_cost_hit_us < 0.0 || cfg.a_cost_miss_us < 0.0 then
    invalid_arg "Admission.replay: cost model must be non-negative"

let replay ?(config = default) ?(dense_upto = 0) (svc : Service.t)
    (arrivals : (float * (Gpusim.Arch.t * int)) list) : summary =
  validate config;
  let stats = Service.stats svc in
  let q = queue config in
  let ctl = controller config svc in
  let server_free = ref 0.0 in
  let admitted = ref 0 and shed = ref 0 and expired = ref 0 in
  let completed = ref 0 and deadline_errors = ref 0 and failed = ref 0 in
  let goodput = ref 0 and violations = ref 0 and ivio = ref 0 in
  let latencies = ref [] in
  let last_completion = ref 0.0 in
  let shed_one (victim : item) ~(why : string) : unit =
    incr shed;
    Stats.shed_request stats ~interactive:(victim.i_prio = Interactive);
    Service.monitor_shed svc;
    Obs.Log.warn
      ~fields:
        [
          ("policy", shed_policy_name config.a_shed_policy);
          ("why", why);
          ( "class",
            match victim.i_prio with
            | Interactive -> "interactive"
            | Batch -> "batch" );
          ("n", string_of_int victim.i_n);
          ("cost_us", Printf.sprintf "%.0f" victim.i_cost_us);
        ]
      "request shed (queue full)"
  in
  let serve (it : item) : unit =
    let start = Float.max !server_free it.i_arrival in
    if
      config.a_enforce_deadline
      && start +. it.i_cost_us > it.i_deadline_at
    then begin
      (* deadline-aware dequeue: work that cannot finish in time is
         dropped before it occupies the server *)
      incr expired;
      Stats.deadline_expire stats;
      Obs.Log.warn
        ~fields:
          [
            ("n", string_of_int it.i_n);
            ("waited_us", Printf.sprintf "%.0f" (start -. it.i_arrival));
          ]
        "deadline infeasible at dequeue; request dropped"
    end
    else begin
      Stats.queue_wait_us stats (start -. it.i_arrival);
      Service.monitor_queue_wait svc (start -. it.i_arrival);
      let remaining = it.i_deadline_at -. start in
      let deadline_us =
        if config.a_enforce_deadline then Some (Float.max 1.0 remaining)
        else None
      in
      let req =
        {
          Service.req_arch = it.i_arch;
          req_input = Trace.replay_input ~dense_upto it.i_n;
        }
      in
      let result = Service.submit_result ?deadline_us svc req in
      let cost_us =
        match result with
        | Ok r ->
            (* warm dispatch and the degraded host path cost the small
               constant; a real cold miss pays the plan/tune sweep *)
            r.Service.resp_sim_us
            +.
            if r.Service.resp_hit || r.Service.resp_degraded then
              config.a_cost_hit_us
            else config.a_cost_miss_us
        | Error (Service.Deadline_exceeded _) ->
            (* the service burned its budget before answering *)
            Float.max 0.0 remaining
        | Error _ -> config.a_cost_hit_us
      in
      server_free := start +. cost_us;
      let completion = !server_free in
      last_completion := Float.max !last_completion completion;
      let latency = completion -. it.i_arrival in
      latencies := latency :: !latencies;
      (match result with
      | Ok _ ->
          incr completed;
          if completion <= it.i_deadline_at then incr goodput
          else begin
            incr violations;
            if it.i_prio = Interactive then incr ivio
          end
      | Error (Service.Deadline_exceeded _) -> incr deadline_errors
      | Error _ -> incr failed);
      ctl_observe ctl ~depth:(depth q) latency
    end
  in
  List.iter
    (fun (t_arr, (arch, n)) ->
      (* run the server forward through everything that starts before
         this arrival *)
      let rec catch_up () =
        if !server_free <= t_arr then
          match dequeue q with
          | Some it ->
              serve it;
              catch_up ()
          | None -> ()
      in
      catch_up ();
      Service.monitor_queue_depth svc (depth q);
      let prio = priority_of config n in
      let it =
        {
          i_arrival = t_arr;
          i_deadline_at = t_arr +. config.a_deadline_us;
          i_prio = prio;
          i_arch = arch;
          i_n = n;
          i_cost_us = predicted_cost_us config svc arch n;
        }
      in
      match offer q it with
      | None ->
          incr admitted;
          Stats.admit stats ~interactive:(prio = Interactive)
      | Some victim when victim == it -> shed_one victim ~why:"newcomer"
      | Some victim ->
          (* the newcomer displaced queued work *)
          incr admitted;
          Stats.admit stats ~interactive:(prio = Interactive);
          shed_one victim ~why:"displaced")
    arrivals;
  (* drain *)
  let rec drain () =
    match dequeue q with
    | Some it ->
        serve it;
        drain ()
    | None -> ()
  in
  drain ();
  (* restore full service once the storm has passed *)
  if config.a_brownout && Service.brownout_level svc > 0 then
    Service.set_brownout svc 0;
  let makespan = !last_completion in
  {
    a_offered = List.length arrivals;
    a_admitted = !admitted;
    a_shed = !shed;
    a_expired = !expired;
    a_completed = !completed;
    a_deadline_errors = !deadline_errors;
    a_failed = !failed;
    a_goodput = !goodput;
    a_goodput_rps =
      (if makespan <= 0.0 then 0.0
       else float_of_int !goodput /. (makespan /. 1e6));
    a_violations = !violations;
    a_interactive_violations = !ivio;
    a_p50_us = percentile !latencies 50.0;
    a_p95_us = percentile !latencies 95.0;
    a_makespan_us = makespan;
    a_max_brownout = ctl.ctl_max;
  }

let pp_summary (fmt : Format.formatter) (s : summary) : unit =
  Format.fprintf fmt
    "offered %d  admitted %d  shed %d  expired %d@\n\
     completed %d  deadline errors %d  failed %d@\n\
     goodput %d (%.0f requests/sec)  violations %d (interactive %d)@\n\
     latency p50 %.0f us  p95 %.0f us  makespan %.1f ms  max brownout %d"
    s.a_offered s.a_admitted s.a_shed s.a_expired s.a_completed
    s.a_deadline_errors s.a_failed s.a_goodput s.a_goodput_rps s.a_violations
    s.a_interactive_violations s.a_p50_us s.a_p95_us (s.a_makespan_us /. 1e3)
    s.a_max_brownout
