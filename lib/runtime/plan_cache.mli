(** The plan cache: memoized outcomes of version selection and tuning.

    The paper's decisive observation (Figures 7-10) is that the winning
    code version depends on the architecture, the combining operation,
    the element type and the input size — and on nothing else. The cache
    therefore keys on exactly that quadruple, with input sizes folded
    into power-of-two buckets: planning and tuning run once per key, and
    every later request in the same bucket reuses the stored winner.

    Entries hold the winning {!Synthesis.Version.t}, its tuned tunables
    and (in memory only) the compiled program. A bounded LRU policy
    evicts the least-recently-used key once [capacity] is exceeded. A
    warmed cache saves to and loads from an s-expression file, so a
    service restart skips the cold path entirely. *)

(** {1 Size buckets} *)

(** The power-of-two bucket of a size: [bucket_of_size n = floor(log2 n)]
    (0 for [n <= 1]). Sizes within one bucket are within 2x of each
    other, close enough to share tuned parameters. *)
val bucket_of_size : int -> int

(** Inclusive lower bound of a bucket ([2^b]). *)
val bucket_lo : int -> int

(** Inclusive upper bound of a bucket ([2^(b+1) - 1]). *)
val bucket_hi : int -> int

(** The size a bucket is planned and tuned at (its lower bound). *)
val representative_size : int -> int

(** {1 Keys and entries} *)

type key = {
  k_arch : string;  (** architecture name, e.g. ["Tesla K40c"] *)
  k_op : string;  (** combining operation, e.g. ["atomicAdd"] *)
  k_elem : string;  (** element type, e.g. ["F32"] *)
  k_bucket : int;  (** power-of-two size bucket *)
}

(** Build a key, bucketing the request size [n]. *)
val key : arch:string -> op:string -> elem:string -> n:int -> key

(** Human-readable rendering, e.g. ["Tesla K40c/atomicAdd/F32/#16"]. *)
val key_name : key -> string

(** One rung of a bucket's fallback ladder: a candidate version that
    survived planning, with its tuned parameters and tuned time. *)
type rung = {
  r_version : Synthesis.Version.t;
  r_tunables : (string * int) list;
  r_time_us : float;  (** tuned time at the bucket's representative size *)
}

type entry = {
  e_version : Synthesis.Version.t;  (** the bucket's winning version *)
  e_tunables : (string * int) list;  (** its tuned parameters *)
  e_compiled : Gpusim.Runner.compiled_program option;
      (** compiled once at plan time; not persisted (recompiled lazily
          after a {!load}) *)
  e_tuned_n : int;  (** the size planning/tuning ran at *)
  e_tune_time_us : float;  (** host-side cost of the cold path *)
  e_ranking : rung list;
      (** every surviving candidate ranked fastest-first — the fallback
          ladder the service walks when the winner is quarantined. Empty
          for hand-built or legacy entries; [e_version] is its head
          otherwise. *)
}

(** The fallback ladder of an entry: [e_ranking], or a single rung made
    of the winner when the ranking is empty (legacy entries). *)
val ladder : entry -> rung list

(** {1 The cache} *)

type t

(** Default LRU capacity (64 entries). *)
val default_capacity : int

val create : ?capacity:int -> unit -> t
val capacity : t -> int
val length : t -> int

(** Total evictions since creation. *)
val evictions : t -> int

(** Lookup; a hit refreshes the entry's LRU recency. *)
val find : t -> key -> entry option

(** Is the key cached, without refreshing its LRU recency? The admission
    layer's cost-aware shed policy predicts whether a request would hit
    the cold plan/tune path; a prediction must not perturb eviction
    order. *)
val mem : t -> key -> bool

(** Insert (or replace) an entry, evicting the least-recently-used key
    if the cache is full. *)
val add : t -> key -> entry -> unit

(** All entries, least-recently-used first. *)
val entries : t -> (key * entry) list

(** {1 Persistence} *)

(** S-expression rendering of the cache (versions are stored by their
    stable {!Synthesis.Version.name}; compiled programs are dropped). *)
val to_string : t -> string

(** Parse a saved cache. Unknown version names fail loudly.
    @raise Device_ir.Serialize.Parse_error on malformed input. *)
val of_string : ?capacity:int -> string -> t

(** Crash-safe snapshot: the rendering of {!to_string} is prefixed with
    a CRC-32 header, written to [path ^ ".tmp"], fsynced, and renamed
    over [path] — readers see either the old snapshot or the new one,
    never a torn write. Saving also truncates [path]'s verdict journal
    (the snapshot supersedes it). *)
val save : t -> string -> unit

(** Load a snapshot: verifies the CRC-32 header when present
    (headerless legacy files parse unchecked), deletes any stale
    [path ^ ".tmp"] left by a crashed save, and replays the verdict
    journal on top — corrupt journal records are skipped with a warning
    on stderr, never fatal.
    @raise Device_ir.Serialize.Parse_error on malformed or
    checksum-failing input, [Sys_error] on an unreadable file. *)
val load : ?capacity:int -> string -> t

(** Like {!of_string}, but a malformed cache comes back as [Error]
    instead of an exception. *)
val of_string_result : ?capacity:int -> string -> (t, string) result

(** Like {!load}, but corrupt, truncated or unreadable files come back
    as [Error] — callers warn and start cold instead of dying. *)
val load_result : ?capacity:int -> string -> (t, string) result

(** {1 Crash safety} *)

(** CRC-32 (IEEE 802.3) of a string — the checksum protecting snapshot
    headers and journal records; exposed for tests. *)
val crc32 : string -> int32

(** The verdict-journal path for a cache persisted at [path]
    ([path ^ ".journal"]). *)
val journal_file : string -> string

(** [attach_journal t path] opens the verdict journal for a cache
    persisted at [path]: from now on every {!add} (each tuner verdict)
    is also appended to the journal as a self-checksummed record and
    fsynced, so a crash between saves loses nothing — the next {!load}
    replays the journal on top of the last snapshot. *)
val attach_journal : t -> string -> unit

(** Close the attached journal, if any. *)
val detach_journal : t -> unit

(** Is a verdict journal currently attached? *)
val journaling : t -> bool
