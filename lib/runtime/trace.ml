(* Synthetic request traces and the replay driver.

   Traces are deterministic (a splitmix-style LCG seeded explicitly);
   the replay submits batches through the service and reports throughput
   plus the cache hit/miss delta, which is what `reduce-explorer
   --service`, `tangramc serve` and the bench `service` subcommand
   print. *)

module R = Gpusim.Runner

type spec = {
  t_requests : int;
  t_seed : int;
  t_sizes : int list;
  t_archs : Gpusim.Arch.t list;
}

let paper_sizes =
  [ 64; 256; 1024; 4096; 16384; 65536; 262144; 1048576; 4194304; 16777216;
    67108864; 268435456 ]

let default ?(requests = 1000) ?(seed = 42) ?(archs = Gpusim.Arch.presets) () :
    spec =
  { t_requests = requests; t_seed = seed; t_sizes = paper_sizes; t_archs = archs }

(* 64-bit LCG (Knuth's MMIX multiplier); the top bits feed selection *)
let lcg (state : int64) : int64 =
  Int64.add (Int64.mul state 6364136223846793005L) 1442695040888963407L

let pick (state : int64) (pool : 'a array) : 'a =
  let bits = Int64.to_int (Int64.shift_right_logical state 33) in
  pool.(bits mod Array.length pool)

let generate (spec : spec) : (Gpusim.Arch.t * int) list =
  if spec.t_sizes = [] || spec.t_archs = [] then
    invalid_arg "Trace.generate: empty size or architecture pool";
  let sizes = Array.of_list spec.t_sizes in
  let archs = Array.of_list spec.t_archs in
  let state = ref (lcg (Int64.of_int spec.t_seed)) in
  List.init spec.t_requests (fun _ ->
      let s1 = lcg !state in
      let s2 = lcg s1 in
      state := s2;
      (pick s1 archs, pick s2 sizes))

(* Open-loop arrivals: the same request stream as [generate], each
   request stamped with a virtual arrival time drawn from a Poisson
   process (exponential inter-arrivals) at [rate_rps]. The timestamp
   stream derives from its own seeded LCG state — [generate]'s
   (arch, size) draws are bit-identical with or without timestamps. *)
let arrivals ?(rate_rps = 1000.0) (spec : spec) :
    (float * (Gpusim.Arch.t * int)) list =
  if Float.is_nan rate_rps || rate_rps <= 0.0 then
    invalid_arg "Trace.arrivals: rate_rps must be positive";
  let reqs = generate spec in
  (* golden-ratio offset decorrelates the clock stream from the
     request stream without touching it *)
  let state =
    ref (lcg (Int64.add (Int64.of_int spec.t_seed) 0x9E3779B97F4A7C15L))
  in
  let now = ref 0.0 in
  List.map
    (fun req ->
      let s = !state in
      state := lcg s;
      let u =
        float_of_int (Int64.to_int (Int64.shift_right_logical s 34))
        /. 1073741824.0
      in
      (* u in [0,1); 1-u in (0,1] keeps log finite *)
      let dt_us = -.Float.log (1.0 -. u) /. rate_rps *. 1e6 in
      now := !now +. dt_us;
      (!now, req))
    reqs

type summary = {
  s_requests : int;
  s_wall_us : float;
  s_rps : float;
  s_hits : int;
  s_misses : int;
  s_degraded : int;
  s_failed : int;
}

(* one shared pattern: same-size requests are same-shape, so they
   coalesce within a batch *)
let pattern = Array.init 64 (fun i -> float_of_int (i land 7))

(* dense inputs are memoized per size: same-size requests share the one
   array, so coalescing still sees them as same-shape *)
let dense_pool : (int, float array) Hashtbl.t = Hashtbl.create 8

let dense_input (n : int) : float array =
  match Hashtbl.find_opt dense_pool n with
  | Some a -> a
  | None ->
      let a = Array.init n (fun i -> pattern.(i land 63)) in
      Hashtbl.add dense_pool n a;
      a

let replay_input ~(dense_upto : int) (n : int) : R.input =
  (* sizes up to [dense_upto] materialize as dense inputs, which run in
     exact mode and so pass through the service's witness verification;
     larger sizes stay synthetic/sampled *)
  if n <= dense_upto then R.Dense (dense_input n) else R.Synthetic { n; pattern }

let rec chunks (k : int) = function
  | [] -> []
  | l ->
      let rec take n acc = function
        | rest when n = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: rest -> take (n - 1) (x :: acc) rest
      in
      let batch, rest = take k [] l in
      batch :: chunks k rest

let replay ?(batch_size = 64) ?(dense_upto = 0) (svc : Service.t)
    (trace : (Gpusim.Arch.t * int) list) : summary =
  if batch_size < 1 then invalid_arg "Trace.replay: batch_size must be positive";
  let stats = Service.stats svc in
  let hits0 = Stats.hits stats and misses0 = Stats.misses stats in
  let batches =
    chunks batch_size
      (List.map
         (fun (arch, n) ->
           { Service.req_arch = arch; req_input = replay_input ~dense_upto n })
         trace)
  in
  let degraded = ref 0 and failed = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iteri
    (fun i batch ->
      (* trace id 0 (outside any request) — per-request root spans open
         inside submit; the batch span shows dispatch boundaries *)
      Obs.Trace.span
        ~attrs:
          [
            ("batch", string_of_int i);
            ("requests", string_of_int (List.length batch));
          ]
        ~name:"batch"
      @@ fun () ->
      List.iter
        (function
          | Ok r -> if r.Service.resp_degraded then incr degraded
          | Error _ -> incr failed)
        (Service.submit_batch_result svc batch))
    batches;
  let wall_us = (Unix.gettimeofday () -. t0) *. 1e6 in
  let requests = List.length trace in
  {
    s_requests = requests;
    s_wall_us = wall_us;
    s_rps =
      (if requests = 0 || wall_us <= 0.0 then 0.0
       else float_of_int requests /. (wall_us /. 1e6));
    s_hits = Stats.hits stats - hits0;
    s_misses = Stats.misses stats - misses0;
    s_degraded = !degraded;
    s_failed = !failed;
  }

let pp_summary (fmt : Format.formatter) (s : summary) : unit =
  Format.fprintf fmt
    "%d requests in %.1f ms  (%.0f requests/sec; lookups: %d hits, %d misses)"
    s.s_requests (s.s_wall_us /. 1e3) s.s_rps s.s_hits s.s_misses;
  if s.s_degraded > 0 || s.s_failed > 0 then
    Format.fprintf fmt "  [%d degraded, %d failed]" s.s_degraded s.s_failed
