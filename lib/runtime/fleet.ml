(* A simulated multi-device fleet.

   The fleet owns N device slots, each with its own arch descriptor,
   seeded fault stream, failure profile and in-flight counter. The
   service asks the router for a device per request; the router picks
   the least-loaded device among the healthy ones, spills over to
   suspect devices when no healthy one is routable, and never offers a
   dead, ejected, draining or spare device (ejected devices do get a
   periodic readmission probe — that is how a recovered device earns
   its way back in).

   Health is an EWMA of the predicted/observed latency ratio: the
   static cost model prices each dispatch without executing anything,
   so a fail-slow device shows up as ratio drift (predicted ≪ observed)
   even while it keeps answering correctly — the straggler case plain
   liveness checks miss. The scorer ejects below a threshold and
   readmits above a higher one (hysteresis), so a device oscillating
   around the boundary cannot flap.

   Everything here is deterministic: device death dispatches and flaky
   fault schedules come from seeded streams, routing is a pure function
   of fleet state, and "time" is the simulator's virtual microseconds —
   replays are bit-stable, which the chaos CI depends on. *)

module Fault = Gpusim.Fault

type state = Spare | Active | Draining | Drained | Ejected | Dead

let state_name = function
  | Spare -> "spare"
  | Active -> "active"
  | Draining -> "draining"
  | Drained -> "drained"
  | Ejected -> "ejected"
  | Dead -> "dead"

type device = {
  d_id : int;
  d_arch : Gpusim.Arch.t;
  d_profile : Fault.profile;
  d_fault : Fault.t option;
  mutable d_state : state;
  mutable d_inflight : int;
  mutable d_dispatches : int;  (* lifetime; drives the profile clock *)
  mutable d_health : float;  (* EWMA of predicted/observed, 1.0 = nominal *)
  mutable d_busy_us : float;  (* virtual device-busy time *)
  mutable d_hedge_wins : int;
}

type config = {
  fl_alpha : float;  (* EWMA weight of the newest ratio sample *)
  fl_suspect_below : float;  (* healthy above, suspect (spillover-only) below *)
  fl_eject_below : float;  (* ejected below *)
  fl_readmit_above : float;  (* an ejected device readmits above (> eject: hysteresis) *)
  fl_probe_period : int;  (* fleet dispatches between readmission probes *)
  fl_failure_penalty : float;  (* ratio sample charged for a failed dispatch *)
  fl_hedge_mult : float;  (* hedge deadline = observed p95 x this *)
  fl_hedge_min_samples : int;  (* latency samples before hedging arms *)
}

let default_config =
  {
    fl_alpha = 0.3;
    fl_suspect_below = 0.6;
    fl_eject_below = 0.3;
    fl_readmit_above = 0.7;
    fl_probe_period = 32;
    fl_failure_penalty = 0.0;
    fl_hedge_mult = 2.0;
    fl_hedge_min_samples = 16;
  }

type spec = {
  sp_arch : Gpusim.Arch.t;
  sp_profile : Fault.profile;
  sp_fault_plan : Fault.plan option;
  sp_spare : bool;
}

let spec ?(profile = Fault.Healthy) ?fault_plan ?(spare = false) arch =
  { sp_arch = arch; sp_profile = profile; sp_fault_plan = fault_plan; sp_spare = spare }

(* recent observed completion latencies, for the p95 the hedge deadline
   prices against *)
type ring = { r_buf : float array; mutable r_fill : int; mutable r_pos : int }

type t = {
  cfg : config;
  all : device array;
  mutable stats : Stats.t option;
  mutable hedging : bool;
  mutable total : int;  (* total fleet dispatches *)
  lat : ring;
  mutable on_eject : (device -> unit) option;
      (* fired after an ejection is recorded; the service points this at
         the flight recorder so the bundle captures the ejection moment *)
}

(* log-event codes, registered in Device_ir.Diag's registry so
   [tangramc codes] stays the one complete catalogue *)
let event_codes =
  [
    ("TFLT001", "device fail-stopped and was marked dead; the dispatch was rerouted");
    ("TFLT002", "health score crossed the eject threshold: device ejected from the serving pool");
    ("TFLT003", "ejected device recovered through readmission probes and rejoined the pool");
    ("TFLT004", "first attempt overran the hedge deadline: speculative re-dispatch fired");
    ("TFLT005", "device marked to drain: finishes in-flight work, takes no new dispatches");
    ("TFLT006", "warm spare promoted into the serving pool");
  ]

let label (d : device) : string =
  Printf.sprintf "d%d:%s" d.d_id d.d_arch.Gpusim.Arch.name

let check_config (c : config) : unit =
  let bad fmt = Printf.ksprintf invalid_arg fmt in
  if not (c.fl_alpha > 0.0 && c.fl_alpha <= 1.0) then
    bad "Fleet.create: alpha %g outside (0, 1]" c.fl_alpha;
  if c.fl_eject_below < 0.0 then
    bad "Fleet.create: eject threshold %g negative" c.fl_eject_below;
  if c.fl_suspect_below < c.fl_eject_below then
    bad "Fleet.create: suspect threshold %g below eject threshold %g"
      c.fl_suspect_below c.fl_eject_below;
  if c.fl_readmit_above <= c.fl_eject_below then
    bad "Fleet.create: readmit threshold %g must exceed eject threshold %g (hysteresis)"
      c.fl_readmit_above c.fl_eject_below;
  if c.fl_probe_period < 1 then
    bad "Fleet.create: probe period %d < 1" c.fl_probe_period;
  if c.fl_failure_penalty < 0.0 then
    bad "Fleet.create: failure penalty %g negative" c.fl_failure_penalty;
  if c.fl_hedge_mult <= 0.0 then
    bad "Fleet.create: hedge multiplier %g must be positive" c.fl_hedge_mult;
  if c.fl_hedge_min_samples < 1 then
    bad "Fleet.create: hedge min samples %d < 1" c.fl_hedge_min_samples

let create ?(config = default_config) ?(seed = 0) (specs : spec list) : t =
  check_config config;
  if specs = [] then invalid_arg "Fleet.create: empty device list";
  if List.for_all (fun s -> s.sp_spare) specs then
    invalid_arg "Fleet.create: every device is a spare";
  let all =
    Array.of_list
      (List.mapi
         (fun i s ->
           Fault.check_profile s.sp_profile;
           let fault =
             match s.sp_fault_plan with
             | Some p -> Some (Fault.create p)
             | None ->
                 let rate = Fault.profile_fault_rate s.sp_profile in
                 if rate > 0.0 then
                   (* flaky devices inject retryable transients from a
                      private stream, decorrelated per slot *)
                   Some
                     (Fault.create
                        (Fault.plan ~rate
                           ~mix:[ (Fault.Transient, 1.0) ]
                           ~seed:(seed + (7919 * (i + 1)))
                           ()))
                 else None
           in
           {
             d_id = i;
             d_arch = s.sp_arch;
             d_profile = s.sp_profile;
             d_fault = fault;
             d_state = (if s.sp_spare then Spare else Active);
             d_inflight = 0;
             d_dispatches = 0;
             d_health = 1.0;
             d_busy_us = 0.0;
             d_hedge_wins = 0;
           })
         specs)
  in
  {
    cfg = config;
    all;
    stats = None;
    hedging = false;
    total = 0;
    lat = { r_buf = Array.make 512 0.0; r_fill = 0; r_pos = 0 };
    on_eject = None;
  }

let st (t : t) (f : Stats.t -> unit) : unit =
  match t.stats with Some s -> f s | None -> ()

let set_stats (t : t) (stats : Stats.t) : unit =
  t.stats <- Some stats;
  (* seed every device's row so the report shows the whole fleet, idle
     slots included *)
  Array.iter
    (fun d ->
      Stats.fleet_state stats ~device:(label d) (state_name d.d_state);
      Stats.fleet_health stats ~device:(label d) d.d_health)
    t.all

let set_hedging (t : t) (b : bool) : unit = t.hedging <- b
let hedging (t : t) : bool = t.hedging
let set_on_eject (t : t) (f : device -> unit) : unit = t.on_eject <- Some f

(* ------------------------------------------------------------------ *)
(* Lifecycle transitions                                               *)
(* ------------------------------------------------------------------ *)

let event (t : t) (d : device) ~(code : string) ~(mark : string) fmt =
  Printf.ksprintf
    (fun msg ->
      Obs.Trace.mark
        ~attrs:[ ("code", code); ("device", label d) ]
        mark;
      Obs.Log.warn
        ~fields:
          [
            ("code", code);
            ("device", label d);
            ("state", state_name d.d_state);
            ("health", Printf.sprintf "%.3f" d.d_health);
          ]
        "%s" msg;
      ignore t)
    fmt

let set_state (t : t) (d : device) (s : state) : unit =
  d.d_state <- s;
  st t (fun x -> Stats.fleet_state x ~device:(label d) (state_name s))

let promote_spare (t : t) : unit =
  match Array.find_opt (fun d -> d.d_state = Spare) t.all with
  | None -> ()
  | Some sp ->
      set_state t sp Active;
      st t (fun x -> Stats.fleet_promote x ~device:(label sp));
      event t sp ~code:"TFLT006" ~mark:"fleet.promote"
        "warm spare %s promoted into the serving pool" (label sp)

let mark_dead (t : t) (d : device) : unit =
  set_state t d Dead;
  st t (fun x -> Stats.fleet_dead x ~device:(label d));
  event t d ~code:"TFLT001" ~mark:"fleet.dead"
    "device %s fail-stopped at dispatch %d; marked dead" (label d)
    (d.d_dispatches + 1);
  promote_spare t

let eject (t : t) (d : device) : unit =
  set_state t d Ejected;
  st t (fun x -> Stats.fleet_eject x ~device:(label d));
  event t d ~code:"TFLT002" ~mark:"fleet.eject"
    "device %s ejected: health %.3f below %.2f" (label d) d.d_health
    t.cfg.fl_eject_below;
  promote_spare t;
  match t.on_eject with Some f -> f d | None -> ()

let readmit (t : t) (d : device) : unit =
  set_state t d Active;
  st t (fun x -> Stats.fleet_readmit x ~device:(label d));
  event t d ~code:"TFLT003" ~mark:"fleet.readmit"
    "device %s readmitted: health %.3f above %.2f" (label d) d.d_health
    t.cfg.fl_readmit_above

let drain (t : t) (id : int) : unit =
  match Array.find_opt (fun d -> d.d_id = id) t.all with
  | None -> invalid_arg (Printf.sprintf "Fleet.drain: no device %d" id)
  | Some d -> (
      match d.d_state with
      | Dead | Draining | Drained -> ()
      | Spare | Active | Ejected ->
          set_state t d (if d.d_inflight = 0 then Drained else Draining);
          st t (fun x -> Stats.fleet_drain x ~device:(label d));
          event t d ~code:"TFLT005" ~mark:"fleet.drain"
            "device %s draining: %d in flight, taking no new work" (label d)
            d.d_inflight;
          promote_spare t)

(* the operator's inverse of drain/eject: a drained or ejected (not
   dead) device rejoins the pool with a clean bill of health *)
let activate (t : t) (id : int) : unit =
  match Array.find_opt (fun d -> d.d_id = id) t.all with
  | None -> invalid_arg (Printf.sprintf "Fleet.activate: no device %d" id)
  | Some d -> (
      match d.d_state with
      | Dead -> invalid_arg (Printf.sprintf "Fleet.activate: device %d is dead" id)
      | Active | Draining -> ()
      | Spare | Drained | Ejected ->
          d.d_health <- 1.0;
          st t (fun x -> Stats.fleet_health x ~device:(label d) d.d_health);
          set_state t d Active)

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)
(* ------------------------------------------------------------------ *)

let less_loaded (a : device) (b : device) : bool =
  (a.d_inflight, a.d_dispatches, a.d_id) < (b.d_inflight, b.d_dispatches, b.d_id)

let pick (pool : device list) : device option =
  List.fold_left
    (fun best d ->
      match best with
      | None -> Some d
      | Some b -> if less_loaded d b then Some d else best)
    None pool

let routable ?excluding (d : device) : bool =
  d.d_state = Active
  && match excluding with Some e -> e.d_id <> d.d_id | None -> true

(* Least-loaded among the healthy; spillover to suspect devices when no
   healthy one is routable; never a dead, draining, ejected or spare
   device. Every [fl_probe_period]-th dispatch instead probes the
   lowest-health ejected or suspect device (probes carry real traffic —
   the observation they produce is what keeps the score converging:
   back above readmission for a recovered device, down through the
   ejection threshold for a fail-slow one that regular routing has
   stopped feeding). When nothing is routable, a warm spare is promoted
   and routing retried once. *)
let route ?excluding ?(probe = true) (t : t) : device option =
  let candidates () =
    Array.to_list t.all |> List.filter (routable ?excluding)
  in
  let probe_target =
    if probe && t.total > 0 && t.total mod t.cfg.fl_probe_period = 0 then begin
      let lowest_health pool =
        List.fold_left
          (fun best d ->
            match best with
            | None -> Some d
            | Some b ->
                if (d.d_health, d.d_id) < (b.d_health, b.d_id) then Some d
                else best)
          None pool
      in
      let probeable state_ok =
        Array.to_list t.all
        |> List.filter (fun d ->
               state_ok d
               && match excluding with Some e -> e.d_id <> d.d_id | None -> true)
      in
      (* suspect devices first: they are still undecided and the scorer
         must converge them; ejected devices (already decided) are only
         probed for recovery once no suspect is waiting *)
      match
        lowest_health
          (probeable (fun d ->
               d.d_state = Active && d.d_health < t.cfg.fl_suspect_below))
      with
      | Some d -> Some d
      | None -> lowest_health (probeable (fun d -> d.d_state = Ejected))
    end
    else None
  in
  match probe_target with
  | Some d -> Some d
  | None -> (
      let actives =
        match candidates () with
        | [] ->
            promote_spare t;
            candidates ()
        | l -> l
      in
      match
        List.filter (fun d -> d.d_health >= t.cfg.fl_suspect_below) actives
      with
      | [] -> pick actives (* spillover to suspect *)
      | healthy -> pick healthy)

(* ------------------------------------------------------------------ *)
(* Dispatch accounting and the health scorer                           *)
(* ------------------------------------------------------------------ *)

(* would the device's fail-stop profile kill it on its next dispatch?
   checked before [begin_dispatch], so a dying device never receives
   the request — the router bounces it to another device instead *)
let next_dispatch_kills (d : device) : bool =
  Fault.profile_dead d.d_profile ~dispatch:(d.d_dispatches + 1)

let reroute (t : t) : unit = st t Stats.fleet_reroute

let begin_dispatch (t : t) (d : device) : unit =
  t.total <- t.total + 1;
  d.d_dispatches <- d.d_dispatches + 1;
  d.d_inflight <- d.d_inflight + 1;
  st t (fun x -> Stats.fleet_dispatch x ~device:(label d))

let end_dispatch (t : t) (d : device) : unit =
  d.d_inflight <- Stdlib.max 0 (d.d_inflight - 1);
  if d.d_state = Draining && d.d_inflight = 0 then set_state t d Drained

(* throughput multiplier of the in-progress dispatch (1-based clock) *)
let slowdown (d : device) : float =
  Fault.profile_slowdown d.d_profile ~dispatch:d.d_dispatches

let fault_stream (d : device) : Fault.t option = d.d_fault
let charge_busy (d : device) (us : float) : unit =
  d.d_busy_us <- d.d_busy_us +. us

(* EWMA update from one dispatch's predicted/observed ratio (1.0 = as
   fast as the static cost model predicted; 0.1 = 10x slow). The sample
   is clamped to [0, 2] so one lucky dispatch cannot whitewash a
   straggler. Crossing the eject threshold ejects; an ejected device
   crossing the (higher) readmit threshold on probe traffic readmits. *)
let observe (t : t) (d : device) ~(ratio : float) : unit =
  let r = Float.max 0.0 (Float.min 2.0 ratio) in
  let a = t.cfg.fl_alpha in
  d.d_health <- ((1.0 -. a) *. d.d_health) +. (a *. r);
  st t (fun x -> Stats.fleet_health x ~device:(label d) d.d_health);
  match d.d_state with
  | Active | Draining ->
      if d.d_state = Active && d.d_health < t.cfg.fl_eject_below then eject t d
  | Ejected -> if d.d_health >= t.cfg.fl_readmit_above then readmit t d
  | Spare | Drained | Dead -> ()

(* a dispatch that produced no answer (every rung down on this device)
   is the worst possible health sample *)
let observe_failure (t : t) (d : device) : unit =
  observe t d ~ratio:t.cfg.fl_failure_penalty

(* ------------------------------------------------------------------ *)
(* Hedged execution                                                    *)
(* ------------------------------------------------------------------ *)

let note_latency (t : t) (us : float) : unit =
  let r = t.lat in
  r.r_buf.(r.r_pos) <- us;
  r.r_pos <- (r.r_pos + 1) mod Array.length r.r_buf;
  if r.r_fill < Array.length r.r_buf then r.r_fill <- r.r_fill + 1

let observed_p95_us (t : t) : float option =
  let r = t.lat in
  if r.r_fill = 0 then None
  else begin
    let sorted = Array.sub r.r_buf 0 r.r_fill in
    Array.sort compare sorted;
    let idx = int_of_float (ceil (0.95 *. float_of_int r.r_fill)) - 1 in
    Some sorted.(Stdlib.max 0 (Stdlib.min (r.r_fill - 1) idx))
  end

(* the speculative re-dispatch deadline: p95 of recently observed
   completion latencies times the configured multiplier; None until
   hedging is on and enough samples have accumulated *)
let hedge_deadline_us (t : t) : float option =
  if (not t.hedging) || t.lat.r_fill < t.cfg.fl_hedge_min_samples then None
  else
    match observed_p95_us t with
    | None -> None
    | Some p95 -> Some (p95 *. t.cfg.fl_hedge_mult)

let hedge_fired (t : t) (d : device) ~(deadline_us : float)
    ~(observed_us : float) : unit =
  st t Stats.fleet_hedge_fired;
  Obs.Trace.mark
    ~attrs:[ ("code", "TFLT004"); ("device", label d) ]
    "fleet.hedge";
  Obs.Log.info
    ~fields:
      [
        ("code", "TFLT004");
        ("device", label d);
        ("observed_us", Printf.sprintf "%.1f" observed_us);
        ("deadline_us", Printf.sprintf "%.1f" deadline_us);
      ]
    "hedge fired: %s took %.1f us against a %.1f us deadline" (label d)
    observed_us deadline_us

let hedge_won (t : t) (d : device) : unit =
  d.d_hedge_wins <- d.d_hedge_wins + 1;
  st t (fun x -> Stats.fleet_hedge_won x ~device:(label d))

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let devices (t : t) : device list = Array.to_list t.all
let n_devices (t : t) : int = Array.length t.all
let find (t : t) (id : int) : device option =
  Array.find_opt (fun d -> d.d_id = id) t.all

let id (d : device) = d.d_id
let arch (d : device) = d.d_arch
let profile (d : device) = d.d_profile
let dev_state (d : device) = d.d_state
let health (d : device) = d.d_health
let dispatches (d : device) = d.d_dispatches
let inflight (d : device) = d.d_inflight
let busy_us (d : device) = d.d_busy_us
let hedge_wins (d : device) = d.d_hedge_wins
let total_dispatches (t : t) = t.total

(* virtual makespan: the busiest device's accumulated kernel time — the
   fleet's parallel completion time, which goodput divides by *)
let makespan_us (t : t) : float =
  Array.fold_left (fun acc d -> Float.max acc d.d_busy_us) 0.0 t.all

(* injected-faulty devices the scorer has not yet taken out of the
   serving pool — the bench's acceptance gate requires this empty *)
let undetected_faulty (t : t) : device list =
  Array.to_list t.all
  |> List.filter (fun d ->
         (match d.d_profile with
         | Fault.Fail_stop _ | Fault.Fail_slow _ | Fault.Flaky _ -> true
         | Fault.Healthy | Fault.Recovering _ -> false)
         && match d.d_state with
            | Active | Draining | Spare -> true
            | Dead | Ejected | Drained -> false)
