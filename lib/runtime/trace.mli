(** Synthetic request traces: deterministic mixed-size workloads drawn
    from the paper's 64…268M sweep, and a replay driver measuring
    service throughput. *)

type spec = {
  t_requests : int;
  t_seed : int;  (** deterministic: same seed, same trace *)
  t_sizes : int list;  (** size pool requests draw from *)
  t_archs : Gpusim.Arch.t list;  (** architecture pool *)
}

(** The paper's evaluation sweep: 64 … 268435456, 4x steps (Figs 7-10). *)
val paper_sizes : int list

(** A paper-shaped trace: [requests] (default 1000) mixed-size requests
    over {!paper_sizes} on [archs] (default: the three paper testbeds). *)
val default :
  ?requests:int -> ?seed:int -> ?archs:Gpusim.Arch.t list -> unit -> spec

(** The trace: (architecture, size) per request. *)
val generate : spec -> (Gpusim.Arch.t * int) list

(** The same trace as {!generate}, stamped with open-loop arrival times
    in virtual microseconds: a Poisson process at [rate_rps] (default
    1000) — exponential inter-arrivals drawn from an LCG stream derived
    from [t_seed], so timestamps are deterministic and {!generate}'s
    request draws are unchanged. Feed this to [Admission.replay].
    @raise Invalid_argument when [rate_rps] is not positive. *)
val arrivals : ?rate_rps:float -> spec -> (float * (Gpusim.Arch.t * int)) list

type summary = {
  s_requests : int;
  s_wall_us : float;  (** host wall clock for the whole replay *)
  s_rps : float;  (** requests per second *)
  s_hits : int;  (** cache-lookup hits during this replay *)
  s_misses : int;
  s_degraded : int;  (** responses served by the degraded host path *)
  s_failed : int;  (** requests that returned [Error] *)
}

(** Replay a trace against a service, submitting requests in batches of
    [batch_size] (default 64; 1 disables coalescing). Inputs share one
    pattern, so same-size requests coalesce within a batch. Sizes up to
    [dense_upto] (default 0: none) are materialized as dense inputs —
    those run in exact mode and are witness-verified by the service's
    SDC guard; larger sizes replay as synthetic sampled requests. *)
val replay :
  ?batch_size:int ->
  ?dense_upto:int ->
  Service.t ->
  (Gpusim.Arch.t * int) list ->
  summary

(** The input the replay drivers materialize for a size: dense (memoized,
    exact mode) up to [dense_upto], synthetic sampled above. Shared with
    [Admission.replay] so both drivers coalesce/verify identically. *)
val replay_input : dense_upto:int -> int -> Gpusim.Runner.input

val pp_summary : Format.formatter -> summary -> unit
