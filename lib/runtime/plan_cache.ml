(* The plan cache: memoized outcomes of version selection and tuning.

   Keyed by (architecture, operation, element type, size bucket) — the
   quadruple Figures 7-10 show the winning version actually depends on.
   Bounded LRU with eviction counting; persists to an s-expression file
   (versions by stable name, tunables inline, compiled programs dropped
   and lazily rebuilt by the service after a load). *)

module V = Synthesis.Version
module S = Device_ir.Serialize

(* ------------------------------------------------------------------ *)
(* Size buckets                                                        *)
(* ------------------------------------------------------------------ *)

let bucket_of_size (n : int) : int =
  let rec go b k = if k <= 1 then b else go (b + 1) (k lsr 1) in
  go 0 n

let bucket_lo (b : int) : int = 1 lsl b
let bucket_hi (b : int) : int = (1 lsl (b + 1)) - 1
let representative_size = bucket_lo

(* ------------------------------------------------------------------ *)
(* Keys and entries                                                    *)
(* ------------------------------------------------------------------ *)

type key = { k_arch : string; k_op : string; k_elem : string; k_bucket : int }

let key ~arch ~op ~elem ~n =
  { k_arch = arch; k_op = op; k_elem = elem; k_bucket = bucket_of_size n }

let key_name (k : key) : string =
  Printf.sprintf "%s/%s/%s/#%d" k.k_arch k.k_op k.k_elem k.k_bucket

(* one rung of the bucket's fallback ladder: a surviving candidate with
   its tuned parameters, fastest first *)
type rung = {
  r_version : V.t;
  r_tunables : (string * int) list;
  r_time_us : float;
}

type entry = {
  e_version : V.t;
  e_tunables : (string * int) list;
  e_compiled : Gpusim.Runner.compiled_program option;
  e_tuned_n : int;
  e_tune_time_us : float;
  e_ranking : rung list;
      (** every surviving candidate, fastest first; [e_version] is its head
          (empty for entries predating the ranking format) *)
}

(* the ladder the service walks: the ranking, or the bare winner for
   legacy entries saved without one *)
let ladder (e : entry) : rung list =
  match e.e_ranking with
  | [] ->
      [ { r_version = e.e_version; r_tunables = e.e_tunables; r_time_us = 0.0 } ]
  | rungs -> rungs

(* ------------------------------------------------------------------ *)
(* The LRU table                                                       *)
(* ------------------------------------------------------------------ *)

type slot = { mutable s_entry : entry; mutable s_stamp : int }

type t = {
  cap : int;
  table : (key, slot) Hashtbl.t;
  mutable tick : int;
  mutable evicted : int;
  mutable journal : (string * out_channel) option;
      (** attached verdict journal: file path + open append channel *)
}

let default_capacity = 64

let create ?(capacity = default_capacity) () : t =
  if capacity < 1 then invalid_arg "Plan_cache.create: capacity must be positive";
  {
    cap = capacity;
    table = Hashtbl.create (2 * capacity);
    tick = 0;
    evicted = 0;
    journal = None;
  }

let capacity t = t.cap
let length t = Hashtbl.length t.table
let evictions t = t.evicted

let touch (t : t) (s : slot) : unit =
  t.tick <- t.tick + 1;
  s.s_stamp <- t.tick

let find (t : t) (k : key) : entry option =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some s ->
      touch t s;
      Some s.s_entry

(* recency is deliberately not refreshed: admission-control cost
   prediction peeks at many keys it will never serve, and letting those
   peeks reorder the LRU would evict entries the server still needs *)
let mem (t : t) (k : key) : bool = Hashtbl.mem t.table k

let evict_lru (t : t) : unit =
  let victim =
    Hashtbl.fold
      (fun k s acc ->
        match acc with
        | Some (_, stamp) when stamp <= s.s_stamp -> acc
        | _ -> Some (k, s.s_stamp))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (k, _) ->
      Hashtbl.remove t.table k;
      t.evicted <- t.evicted + 1

(* filled in by the persistence section below, where the serializer
   lives; a no-op until a journal is attached *)
let journal_append : (t -> key -> entry -> unit) ref = ref (fun _ _ _ -> ())

let add (t : t) (k : key) (e : entry) : unit =
  (match Hashtbl.find_opt t.table k with
  | Some s ->
      s.s_entry <- e;
      touch t s
  | None ->
      if Hashtbl.length t.table >= t.cap then evict_lru t;
      t.tick <- t.tick + 1;
      Hashtbl.add t.table k { s_entry = e; s_stamp = t.tick });
  if t.journal <> None then !journal_append t k e

let entries (t : t) : (key * entry) list =
  Hashtbl.fold (fun k s acc -> (k, s) :: acc) t.table []
  |> List.sort (fun (_, a) (_, b) -> compare a.s_stamp b.s_stamp)
  |> List.map (fun (k, s) -> (k, s.s_entry))

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)
(* ------------------------------------------------------------------ *)

let fail fmt = Printf.ksprintf (fun s -> raise (S.Parse_error s)) fmt

let sexp_of_tunables (tunables : (string * int) list) : S.sexp =
  S.List
    (S.Atom "tunables"
    :: List.map
         (fun (name, v) -> S.List [ S.Atom name; S.Atom (string_of_int v) ])
         tunables)

let sexp_of_rung (r : rung) : S.sexp =
  S.List
    [
      S.Atom "rung";
      S.List [ S.Atom "version"; S.Atom (V.name r.r_version) ];
      S.List [ S.Atom "time-us"; S.Atom (Printf.sprintf "%.17g" r.r_time_us) ];
      sexp_of_tunables r.r_tunables;
    ]

let sexp_of_entry (k : key) (e : entry) : S.sexp =
  S.List
    [
      S.Atom "entry";
      S.List [ S.Atom "arch"; S.Atom k.k_arch ];
      S.List [ S.Atom "op"; S.Atom k.k_op ];
      S.List [ S.Atom "elem"; S.Atom k.k_elem ];
      S.List [ S.Atom "bucket"; S.Atom (string_of_int k.k_bucket) ];
      S.List [ S.Atom "version"; S.Atom (V.name e.e_version) ];
      S.List [ S.Atom "tuned-n"; S.Atom (string_of_int e.e_tuned_n) ];
      S.List
        [ S.Atom "tune-time-us"; S.Atom (Printf.sprintf "%.17g" e.e_tune_time_us) ];
      sexp_of_tunables e.e_tunables;
      S.List (S.Atom "ranking" :: List.map sexp_of_rung e.e_ranking);
    ]

let to_string (t : t) : string =
  let body =
    S.List
      (S.Atom "plan-cache"
      :: S.List [ S.Atom "capacity"; S.Atom (string_of_int t.cap) ]
      :: List.map (fun (k, e) -> sexp_of_entry k e) (entries t))
  in
  S.sexp_to_string body ^ "\n"

(* the full search space (extensions included), indexed by stable name *)
let version_by_name : (string, V.t) Hashtbl.t Lazy.t =
  lazy
    (let tbl = Hashtbl.create 128 in
     List.iter (fun v -> Hashtbl.replace tbl (V.name v) v)
       (V.enumerate ~extensions:true ());
     tbl)

let resolve_version (name : string) : V.t =
  match Hashtbl.find_opt (Lazy.force version_by_name) name with
  | Some v -> v
  | None -> (
      (* synthesized exchanges live outside the stock enumeration; a cache
         written after a synthesis sweep may legitimately name one *)
      match List.find_opt (fun v -> V.name v = name) (V.synthesized ()) with
      | Some v -> v
      | None -> fail "plan-cache: unknown version %S" name)

let field (fields : S.sexp list) (name : string) : S.sexp list option =
  List.find_map
    (function
      | S.List (S.Atom n :: rest) when n = name -> Some rest
      | _ -> None)
    fields

let atom_field (fields : S.sexp list) (name : string) : string =
  match field fields name with
  | Some [ S.Atom a ] -> a
  | _ -> fail "plan-cache: missing or malformed field %S" name

let int_field fields name =
  match int_of_string_opt (atom_field fields name) with
  | Some i -> i
  | None -> fail "plan-cache: field %S is not an integer" name

let float_field fields name =
  match float_of_string_opt (atom_field fields name) with
  | Some f -> f
  | None -> fail "plan-cache: field %S is not a number" name

let tunables_of_items (items : S.sexp list) : (string * int) list =
  List.map
    (function
      | S.List [ S.Atom name; S.Atom v ] -> (
          match int_of_string_opt v with
          | Some i -> (name, i)
          | None -> fail "plan-cache: tunable %S is not an integer" name)
      | _ -> fail "plan-cache: malformed tunable binding")
    items

let tunables_field (fields : S.sexp list) : (string * int) list =
  match field fields "tunables" with
  | None -> fail "plan-cache: missing tunables"
  | Some items -> tunables_of_items items

let rung_of_sexp (sexp : S.sexp) : rung =
  match sexp with
  | S.List (S.Atom "rung" :: fields) ->
      {
        r_version = resolve_version (atom_field fields "version");
        r_tunables = tunables_field fields;
        r_time_us = float_field fields "time-us";
      }
  | _ -> fail "plan-cache: expected a (rung ...) form"

let entry_of_sexp (sexp : S.sexp) : key * entry =
  match sexp with
  | S.List (S.Atom "entry" :: fields) ->
      let k =
        {
          k_arch = atom_field fields "arch";
          k_op = atom_field fields "op";
          k_elem = atom_field fields "elem";
          k_bucket = int_field fields "bucket";
        }
      in
      let version = resolve_version (atom_field fields "version") in
      let tunables = tunables_field fields in
      let ranking =
        (* entries saved before the ranking format load as a one-rung
           ladder (the winner alone: no fallback, but still servable) *)
        match field fields "ranking" with
        | None ->
            [ { r_version = version; r_tunables = tunables; r_time_us = 0.0 } ]
        | Some items -> List.map rung_of_sexp items
      in
      let e =
        {
          e_version = version;
          e_tunables = tunables;
          e_compiled = None;
          e_tuned_n = int_field fields "tuned-n";
          e_tune_time_us = float_field fields "tune-time-us";
          e_ranking = ranking;
        }
      in
      (k, e)
  | _ -> fail "plan-cache: expected an (entry ...) form"

let of_string ?capacity (src : string) : t =
  match S.parse_sexp src with
  | S.List (S.Atom "plan-cache" :: fields) ->
      let saved_cap =
        match field fields "capacity" with
        | Some [ S.Atom a ] -> int_of_string_opt a
        | _ -> None
      in
      let capacity =
        match (capacity, saved_cap) with
        | Some c, _ -> c
        | None, Some c -> c
        | None, None -> default_capacity
      in
      let t = create ~capacity () in
      List.iter
        (function
          | S.List (S.Atom "entry" :: _) as s ->
              let k, e = entry_of_sexp s in
              add t k e
          | _ -> ())
        fields;
      t
  | _ -> fail "plan-cache: expected a (plan-cache ...) form"

(* ------------------------------------------------------------------ *)
(* Crash safety: checksummed snapshots, atomic renames, a verdict      *)
(* journal                                                             *)
(* ------------------------------------------------------------------ *)

(* plain table-driven CRC-32 (the IEEE 802.3 polynomial) *)
let crc_table : int32 array Lazy.t =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 (s : string) : int32 =
  let tbl = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i =
        Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor tbl.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let temp_file (path : string) : string = path ^ ".tmp"
let journal_file (path : string) : string = path ^ ".journal"

let remove_if_exists (p : string) : unit =
  try if Sys.file_exists p then Sys.remove p with Sys_error _ -> ()

let fsync_out (oc : out_channel) : unit =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

(* The snapshot header: a comment-shaped first line carrying the body's
   CRC-32 and length, so torn or bit-rotted snapshots are detected at
   load instead of silently parsing into garbage. *)
let snapshot_header (body : string) : string =
  Printf.sprintf "; plan-cache crc32 %08lx %d\n" (crc32 body) (String.length body)

(* Verify and strip the header. Headerless input (legacy snapshots,
   hand-written files, raw [to_string] output) passes through
   unchecked. *)
let verify_snapshot (src : string) : string =
  match String.index_opt src '\n' with
  | Some nl when String.length src >= 2 && src.[0] = ';' -> (
      let header = String.sub src 0 nl in
      let body = String.sub src (nl + 1) (String.length src - nl - 1) in
      match
        Scanf.sscanf_opt header "; plan-cache crc32 %lx %d" (fun c n -> (c, n))
      with
      | None -> src
      | Some (c, n) ->
          if String.length body <> n then
            fail "plan-cache: snapshot truncated (%d bytes, header says %d)"
              (String.length body) n
          else if crc32 body <> c then
            fail "plan-cache: snapshot checksum mismatch (file corrupt)"
          else body)
  | _ -> src

(* one journal record: a self-checksummed length-prefixed (entry ...) *)
let journal_record (k : key) (e : entry) : string =
  let body = S.sexp_to_string (sexp_of_entry k e) in
  Printf.sprintf "plan-journal %08lx %d\n%s\n" (crc32 body)
    (String.length body) body

let () =
  journal_append :=
    fun (t : t) (k : key) (e : entry) ->
      match t.journal with
      | None -> ()
      | Some (_, oc) ->
          output_string oc (journal_record k e);
          (* a verdict is durable the moment it is recorded: a crash
             between here and the next save must not re-tune the bucket *)
          fsync_out oc

let open_journal (jpath : string) : out_channel =
  open_out_gen [ Open_append; Open_creat ] 0o644 jpath

let attach_journal (t : t) (path : string) : unit =
  (match t.journal with Some (_, oc) -> close_out oc | None -> ());
  t.journal <- Some (journal_file path, open_journal (journal_file path))

let detach_journal (t : t) : unit =
  match t.journal with
  | None -> ()
  | Some (_, oc) ->
      close_out oc;
      t.journal <- None

let journaling (t : t) : bool = t.journal <> None

(* Replay journal records on top of a loaded snapshot. Each record is
   independently checksummed: a corrupt one is skipped with a warning
   (torn tail writes after a crash are expected), never fatal. A record
   whose *header* is unreadable ends the replay — record boundaries are
   gone past that point. *)
let replay_journal (t : t) (jpath : string) : int =
  let ic = open_in_bin jpath in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  let warn fmt =
    Printf.ksprintf (fun m -> Obs.Log.warn ~fields:[ ("path", jpath) ] "%s" m) fmt
  in
  let replayed = ref 0 in
  let pos = ref 0 in
  let stop = ref false in
  while (not !stop) && !pos < String.length src do
    match String.index_from_opt src !pos '\n' with
    | None ->
        warn "truncated journal header at byte %d; discarding tail" !pos;
        stop := true
    | Some nl -> (
        let header = String.sub src !pos (nl - !pos) in
        match
          Scanf.sscanf_opt header "plan-journal %lx %d" (fun c n -> (c, n))
        with
        | None ->
            warn "corrupt journal header at byte %d; discarding tail" !pos;
            stop := true
        | Some (c, n) ->
            if n < 0 || nl + 1 + n > String.length src then begin
              warn "truncated journal record at byte %d; discarding tail" !pos;
              stop := true
            end
            else begin
              let body = String.sub src (nl + 1) n in
              (if crc32 body <> c then
                 warn "checksum mismatch in journal record at byte %d; skipped"
                   !pos
               else
                 match entry_of_sexp (S.parse_sexp body) with
                 | k, e ->
                     add t k e;
                     incr replayed
                 | exception S.Parse_error m ->
                     warn "unparseable journal record at byte %d (%s); skipped"
                       !pos m);
              (* step over the record and its trailing newline *)
              pos := nl + 1 + n;
              if !pos < String.length src && src.[!pos] = '\n' then incr pos
            end)
  done;
  !replayed

let save (t : t) (path : string) : unit =
  let body = to_string t in
  let tmp = temp_file path in
  let oc = open_out tmp in
  output_string oc (snapshot_header body);
  output_string oc body;
  fsync_out oc;
  close_out oc;
  (* the rename is the commit point: readers see either the old snapshot
     or the new one, never a half-written file *)
  Sys.rename tmp path;
  (* the snapshot now covers every journaled verdict *)
  match t.journal with
  | Some (jpath, oc) when jpath = journal_file path ->
      close_out oc;
      remove_if_exists jpath;
      t.journal <- Some (jpath, open_journal jpath)
  | _ -> remove_if_exists (journal_file path)

let load ?capacity (path : string) : t =
  (* a leftover temp file is a save that never reached its commit
     point — stale by definition, removed so it cannot be mistaken for
     state *)
  remove_if_exists (temp_file path);
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  let t = of_string ?capacity (verify_snapshot src) in
  let jpath = journal_file path in
  if Sys.file_exists jpath then ignore (replay_journal t jpath);
  t

(* ------------------------------------------------------------------ *)
(* Non-raising parsing: a corrupt or truncated cache file must degrade  *)
(* a service to a cold start, not kill it                               *)
(* ------------------------------------------------------------------ *)

let of_string_result ?capacity (src : string) : (t, string) result =
  match of_string ?capacity src with
  | t -> Ok t
  | exception S.Parse_error msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let load_result ?capacity (path : string) : (t, string) result =
  match load ?capacity path with
  | t -> Ok t
  | exception S.Parse_error msg -> Error (path ^ ": " ^ msg)
  | exception Sys_error msg -> Error msg
  | exception End_of_file -> Error (path ^ ": truncated cache file")
  | exception Invalid_argument msg -> Error (path ^ ": " ^ msg)
