(* The request engine.

   Dispatch is size-bucketed: a request's (arch, op, elem, bucket) key
   either hits the plan cache (run immediately with the memoized winner)
   or triggers the cold path — sweep every candidate version's tunables
   at the bucket's representative size, keep the fastest, populate the
   cache. Batched submission coalesces same-shape requests into one
   simulation, the serving analogue of the paper's observation that the
   winner depends only on (arch, op, elem, size). *)

module V = Synthesis.Version
module P = Synthesis.Planner
module Tuner = Synthesis.Tuner
module R = Gpusim.Runner

type request = { req_arch : Gpusim.Arch.t; req_input : R.input }

type response = {
  resp_value : float;
  resp_exact : bool;
  resp_sim_us : float;
  resp_version : V.t;
  resp_tunables : (string * int) list;
  resp_hit : bool;
  resp_bucket : int;
  resp_service_us : float;
}

type t = {
  planner : P.t;
  cache : Plan_cache.t;
  stats : Stats.t;
  candidates : V.t list;
  exact_threshold : int;
}

let create ?capacity ?cache ?candidates ?(exact_threshold = 1 lsl 17)
    (planner : P.t) : t =
  let cache =
    match cache with Some c -> c | None -> Plan_cache.create ?capacity ()
  in
  let candidates =
    match candidates with Some cs -> cs | None -> V.enumerate_pruned ()
  in
  (match candidates with
  | [] -> invalid_arg "Service.create: empty candidate list"
  | _ -> ());
  { planner; cache; stats = Stats.create (); candidates; exact_threshold }

let planner t = t.planner
let cache t = t.cache
let stats t = t.stats

let now_us () = Unix.gettimeofday () *. 1e6

(* fast sampled mode for serving: cost is near-constant in the input size *)
let sampled_opts : Gpusim.Interp.options =
  { Gpusim.Interp.max_blocks = Some 12; loop_cap = Some 24; check_uniform = false }

let opts_for (t : t) (input : R.input) : Gpusim.Interp.options =
  match input with
  | R.Dense a when Array.length a <= t.exact_threshold -> Gpusim.Interp.exact
  | R.Dense _ | R.Synthetic _ -> sampled_opts

let key_of (t : t) (arch : Gpusim.Arch.t) (n : int) : Plan_cache.key =
  Plan_cache.key ~arch:arch.Gpusim.Arch.name ~op:(P.op_name t.planner)
    ~elem:(P.elem_name t.planner) ~n

(* ------------------------------------------------------------------ *)
(* The cold path: plan + tune one bucket                               *)
(* ------------------------------------------------------------------ *)

(* Selection and tuning in one sweep: each candidate's tunables are swept
   at the bucket's representative size (the tuner already reports the
   fastest configuration's time), and the version with the fastest tuned
   configuration wins the bucket. *)
let plan_bucket (t : t) (arch : Gpusim.Arch.t) (k : Plan_cache.key) :
    Plan_cache.entry =
  let rep = Plan_cache.representative_size k.Plan_cache.k_bucket in
  let t0 = now_us () in
  (* planning: lower, validate and compile every candidate (memoized in
     the planner across buckets and architectures) *)
  let compiled =
    List.filter_map
      (fun v ->
        match P.compiled t.planner v with
        | cp -> Some (v, cp)
        | exception Device_ir.Validate.Invalid _ -> None)
      t.candidates
  in
  Stats.plan_us t.stats (now_us () -. t0);
  let t1 = now_us () in
  let best = ref None in
  List.iter
    (fun (v, cp) ->
      match Tuner.tune ~arch ~n:rep cp with
      | o -> (
          match !best with
          | Some (_, _, bt) when bt <= o.Tuner.best_time_us -> ()
          | _ -> best := Some (v, o.Tuner.best, o.Tuner.best_time_us))
      | exception (Invalid_argument _ | Gpusim.Interp.Sim_error _) -> ())
    compiled;
  let tune_us = now_us () -. t1 in
  Stats.tune_us t.stats tune_us;
  match !best with
  | None ->
      failwith
        (Printf.sprintf "Service: no candidate version survived planning for %s"
           (Plan_cache.key_name k))
  | Some (v, tunables, _) ->
      {
        Plan_cache.e_version = v;
        e_tunables = tunables;
        e_compiled = Some (P.compiled t.planner v);
        e_tuned_n = rep;
        e_tune_time_us = tune_us;
      }

let ensure (t : t) (arch : Gpusim.Arch.t) (n : int) : Plan_cache.entry * bool =
  let k = key_of t arch n in
  let bucket = Plan_cache.key_name k in
  match Plan_cache.find t.cache k with
  | Some e ->
      Stats.hit t.stats ~bucket;
      (e, true)
  | None ->
      Stats.miss t.stats ~bucket;
      let e = plan_bucket t arch k in
      let before = Plan_cache.evictions t.cache in
      Plan_cache.add t.cache k e;
      for _ = 1 to Plan_cache.evictions t.cache - before do
        Stats.eviction t.stats
      done;
      (e, false)

(* ------------------------------------------------------------------ *)
(* Serving                                                             *)
(* ------------------------------------------------------------------ *)

let run_entry (t : t) (req : request) (e : Plan_cache.entry) (hit : bool)
    (started_us : float) : response =
  let cp =
    match e.Plan_cache.e_compiled with
    | Some cp -> cp
    | None -> P.compiled t.planner e.Plan_cache.e_version
  in
  let run_started = now_us () in
  let o =
    R.run_compiled ~opts:(opts_for t req.req_input) ~arch:req.req_arch
      ~tunables:e.Plan_cache.e_tunables ~input:req.req_input cp
  in
  Stats.run_us t.stats (now_us () -. run_started);
  Stats.winner t.stats (V.name e.Plan_cache.e_version);
  let service_us = now_us () -. started_us in
  {
    resp_value = o.R.result;
    resp_exact = o.R.exact;
    resp_sim_us = o.R.time_us;
    resp_version = e.Plan_cache.e_version;
    resp_tunables = e.Plan_cache.e_tunables;
    resp_hit = hit;
    resp_bucket = Plan_cache.bucket_of_size (R.input_size req.req_input);
    resp_service_us = service_us;
  }

let submit (t : t) (req : request) : response =
  let started = now_us () in
  let e, hit = ensure t req.req_arch (R.input_size req.req_input) in
  run_entry t req e hit started

(* Two requests share one simulation when they target the same
   architecture and carry equal inputs (synthetic inputs compare by
   (n, pattern); dense inputs by contents — same data, same reduction). *)
let same_shape (a : request) (b : request) : bool =
  a.req_arch.Gpusim.Arch.name = b.req_arch.Gpusim.Arch.name
  &&
  match (a.req_input, b.req_input) with
  | R.Dense x, R.Dense y -> x == y || x = y
  | R.Synthetic sx, R.Synthetic sy ->
      sx.n = sy.n && (sx.pattern == sy.pattern || sx.pattern = sy.pattern)
  | _ -> false

let submit_batch (t : t) (reqs : request list) : response list =
  match reqs with
  | [] -> []
  | [ req ] -> [ submit t req ]
  | _ ->
      (* group indices by shape, preserving first-seen group order *)
      let groups : (request * int list ref) list ref = ref [] in
      List.iteri
        (fun i req ->
          match List.find_opt (fun (rep, _) -> same_shape rep req) !groups with
          | Some (_, idxs) -> idxs := i :: !idxs
          | None -> groups := !groups @ [ (req, ref [ i ]) ])
        reqs;
      let n_reqs = List.length reqs in
      Stats.batch t.stats ~size:n_reqs
        ~coalesced:(n_reqs - List.length !groups);
      let responses = Array.make n_reqs None in
      List.iter
        (fun (rep, idxs) ->
          let r = submit t rep in
          List.iter (fun i -> responses.(i) <- Some r) !idxs)
        !groups;
      Array.to_list responses
      |> List.map (function Some r -> r | None -> assert false)

let report (t : t) : string = Stats.report t.stats
