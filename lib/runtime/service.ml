(* The request engine.

   Dispatch is size-bucketed: a request's (arch, op, elem, bucket) key
   either hits the plan cache (run immediately with the memoized winner)
   or triggers the cold path — sweep every candidate version's tunables
   at the bucket's representative size, rank the survivors fastest-first,
   and populate the cache with the whole ranking. Batched submission
   coalesces same-shape requests into one simulation, the serving
   analogue of the paper's observation that the winner depends only on
   (arch, op, elem, size).

   Resilience (this layer's second job): every simulator failure is
   caught and classified. Transient faults are retried under bounded
   exponential backoff with jitter, accounted in simulated time. Hard
   faults (injected timeouts, corrupted results, exhausted retries)
   charge a per-(arch, version) circuit breaker; at the quarantine
   threshold the breaker opens and the bucket's next-fastest ranked
   version serves instead — the fallback ladder reuses the cold-path
   ranking, so no re-tuning happens under fire. An open breaker half-opens
   after a cooldown and one probe either closes it or re-opens it. When
   every rung of a bucket's ladder is down, the service degrades to the
   planner's host-side reference instead of failing, flagging the
   response [resp_degraded]. *)

module V = Synthesis.Version
module P = Synthesis.Planner
module Tuner = Synthesis.Tuner
module R = Gpusim.Runner
module Fault = Gpusim.Fault

type request = { req_arch : Gpusim.Arch.t; req_input : R.input }

type response = {
  resp_value : float;
  resp_exact : bool;
  resp_sim_us : float;
  resp_version : V.t;
      (* when resp_degraded: the last-attempted rung, not the server —
         the value is a host recomputation (see service.mli) *)
  resp_tunables : (string * int) list;
  resp_hit : bool;
  resp_bucket : int;
  resp_service_us : float;
  resp_degraded : bool;
  resp_retries : int;
  resp_fallback : int;
}

type error =
  | Bad_request of string
  | Transient of string
  | Version_fault of string
  | Cache_corrupt of string
  | Sdc of string
  | Deadline_exceeded of string

exception Service_error of error

let error_message = function
  | Bad_request m -> "bad request: " ^ m
  | Transient m -> "transient failure: " ^ m
  | Version_fault m -> "version fault: " ^ m
  | Cache_corrupt m -> "corrupt plan cache: " ^ m
  | Sdc m -> "silent data corruption: " ^ m
  | Deadline_exceeded m -> "deadline exceeded: " ^ m

type resilience = {
  r_retry_max : int;
  r_backoff_base_us : float;
  r_backoff_mult : float;
  r_backoff_max_us : float;
  r_jitter : float;
  r_quarantine_threshold : int;
  r_cooldown_requests : int;
  r_allow_degraded : bool;
}

let default_resilience =
  {
    r_retry_max = 3;
    r_backoff_base_us = 50.0;
    r_backoff_mult = 2.0;
    r_backoff_max_us = 5_000.0;
    r_jitter = 0.25;
    r_quarantine_threshold = 3;
    r_cooldown_requests = 64;
    r_allow_degraded = true;
  }

(* per-(arch, version) circuit breaker: faults accumulate while closed
   (they need not be consecutive — a 5% fault rate must still trip a hot
   version eventually); at the threshold the breaker opens until a
   cooldown of service ticks passes, then the next selection half-opens
   it for one probe. Only a successful half-open probe closes the breaker
   and clears the count — ordinary successes do not, so a lightly-faulting
   version still trips the threshold eventually. *)
type breaker = {
  mutable br_faults : int;
  mutable br_open_until : int;  (* service tick; 0 = closed *)
}

(* The service monitor: windowed metrics, burn-rate SLOs and the
   flight recorder, driven by a serialized virtual clock that advances
   by each request's observed virtual latency. Optional — a service
   without one behaves (and reports) exactly as before. *)
type monitor = {
  m_metrics : Obs.Metrics.t;
  m_recorder : Recorder.t;
  m_latency_slo : Obs.Slo.t;
  m_sdc_slo : Obs.Slo.t;
  m_goodput_slo : Obs.Slo.t;
  m_latency_mult : float;
      (* a request is latency-good when its observed virtual time stays
         within this multiple of the static-cost prediction *)
  m_interactive_max : int;
      (* inputs at or below this size feed the latency SLO *)
  m_snapshot_every : int;  (* metric-snapshot cadence, in requests *)
  mutable m_now_us : float;  (* serialized virtual clock *)
  mutable m_requests : int;
  mutable m_pending_sdc : int;
      (* corruption verdicts land mid-request, before the recorder notes
         it; deferred so the bundle's trigger request is the right one *)
  mutable m_pending_eject : string list;  (* same deferral for ejections *)
  m_req_ok : Obs.Metrics.counter;
  m_req_err : Obs.Metrics.counter;
  m_lat_interactive : Obs.Metrics.histogram;
  m_lat_batch : Obs.Metrics.histogram;
  m_sdc_checks : Obs.Metrics.counter;
  m_sdc_caught : Obs.Metrics.counter;
  m_alerts : Obs.Metrics.counter;
  m_incidents : Obs.Metrics.counter;
  m_brownout_g : Obs.Metrics.gauge;
  m_queue_depth : Obs.Metrics.gauge;
  m_fleet_healthy : Obs.Metrics.gauge;
  m_queue_wait : Obs.Metrics.histogram;
  m_sheds : Obs.Metrics.counter;
}

type t = {
  planner : P.t;
  cache : Plan_cache.t;
  stats : Stats.t;
  candidates : V.t list;
  exact_threshold : int;
  resilience : resilience;
  guard : Guard.config;
  mutable fault : Fault.t option;
  breakers : (string * string, breaker) Hashtbl.t;
  mutable tick : int;
  mutable jitter_state : int64;
  mutable profile : bool;
      (* when on, every served outcome's launch counters aggregate into
         the stats per (arch, version); off by default so the plain-text
         report stays byte-identical for existing consumers *)
  mutable brownout : int;
      (* degradation ladder position, 0 (full service) .. 4 (host path);
         driven by [Admission]'s controller or [set_brownout] *)
  mutable fleet : Fleet.t option;
      (* when attached, requests route through the fleet's devices; the
         single-device path below is byte-identical when absent *)
  predicted_cache : (string * string * int * (string * int) list, float) Hashtbl.t;
      (* memoized static-cost predictions keyed by (arch, version, n,
         tunables) — the health scorer's no-execution baseline *)
  mutable monitor : monitor option;
}

let create ?capacity ?cache ?candidates ?(exact_threshold = 1 lsl 17)
    ?(resilience = default_resilience) ?(guard = Guard.default) ?fault
    ?(jitter_seed = 0) (planner : P.t) : t =
  let cache =
    match cache with Some c -> c | None -> Plan_cache.create ?capacity ()
  in
  let candidates =
    match candidates with Some cs -> cs | None -> V.enumerate_pruned ()
  in
  (match candidates with
  | [] -> invalid_arg "Service.create: empty candidate list"
  | _ -> ());
  if resilience.r_retry_max < 0 then
    invalid_arg "Service.create: retry_max must be non-negative";
  if resilience.r_quarantine_threshold < 1 then
    invalid_arg "Service.create: quarantine_threshold must be positive";
  if resilience.r_cooldown_requests < 1 then
    invalid_arg "Service.create: cooldown_requests must be positive";
  {
    planner;
    cache;
    stats = Stats.create ();
    candidates;
    exact_threshold;
    resilience;
    guard;
    fault;
    breakers = Hashtbl.create 64;
    tick = 0;
    jitter_state =
      Int64.add (Int64.mul (Int64.of_int jitter_seed) 6364136223846793005L)
        1442695040888963407L;
    profile = false;
    brownout = 0;
    fleet = None;
    predicted_cache = Hashtbl.create 64;
    monitor = None;
  }

let planner t = t.planner
let cache t = t.cache
let stats t = t.stats
let guard t = t.guard
let fault t = t.fault
let set_fault t f = t.fault <- f
let profiling t = t.profile
let set_profiling t b = t.profile <- b
let fleet t = t.fleet

let mon (t : t) (f : monitor -> unit) : unit =
  match t.monitor with Some m -> f m | None -> ()

let attach_fleet (t : t) (fl : Fleet.t) : unit =
  Fleet.set_stats fl t.stats;
  (* ejections are deferred into the monitor's pending list: they fire
     mid-request, and the bundle's trigger request must be the one that
     actually pushed the device under the threshold *)
  Fleet.set_on_eject fl (fun d ->
      mon t (fun m ->
          m.m_pending_eject <- Fleet.label d :: m.m_pending_eject));
  t.fleet <- Some fl

let detach_fleet (t : t) : unit = t.fleet <- None

let max_brownout = 4
let brownout_level t = t.brownout

(* every transition is an overload event: counted, warn-logged with the
   direction, and visible in the report's overload section *)
let set_brownout (t : t) (level : int) : unit =
  if level < 0 || level > max_brownout then
    invalid_arg
      (Printf.sprintf "Service.set_brownout: level must be within 0..%d"
         max_brownout);
  if level <> t.brownout then begin
    let dir = if level > t.brownout then "raise" else "lower" in
    Stats.brownout_transition t.stats ~level;
    Obs.Trace.mark
      ~attrs:[ ("level", string_of_int level); ("direction", dir) ]
      "brownout";
    Obs.Log.warn
      ~fields:
        [
          ("from", string_of_int t.brownout);
          ("to", string_of_int level);
          ("direction", dir);
        ]
      "brownout level %s to %d" dir level;
    t.brownout <- level
  end

let load_cache ?capacity (path : string) : (Plan_cache.t, error) result =
  match Plan_cache.load_result ?capacity path with
  | Ok c -> Ok c
  | Error msg -> Error (Cache_corrupt msg)

let now_us () = Unix.gettimeofday () *. 1e6

(* fast sampled mode for serving: cost is near-constant in the input size *)
let sampled_opts : Gpusim.Interp.options =
  { Gpusim.Interp.max_blocks = Some 12; loop_cap = Some 24; check_uniform = false }

let opts_for (t : t) (input : R.input) : Gpusim.Interp.options =
  match input with
  | R.Dense a when Array.length a <= t.exact_threshold -> Gpusim.Interp.exact
  | R.Dense _ | R.Synthetic _ -> sampled_opts

let key_of (t : t) (arch : Gpusim.Arch.t) (n : int) : Plan_cache.key =
  Plan_cache.key ~arch:arch.Gpusim.Arch.name ~op:(P.op_name t.planner)
    ~elem:(P.elem_name t.planner) ~n

(* ------------------------------------------------------------------ *)
(* The cold path: plan + tune one bucket                               *)
(* ------------------------------------------------------------------ *)

(* Selection and tuning in one sweep: each candidate's tunables are swept
   at the bucket's representative size (the tuner already reports the
   fastest configuration's time), and the surviving versions are ranked
   fastest-first. The head of the ranking wins the bucket; the tail is
   the fallback ladder quarantine walks. Fault injection never reaches
   this path, so rankings are deterministic under chaos. *)
let plan_bucket (t : t) (arch : Gpusim.Arch.t) (k : Plan_cache.key) :
    (Plan_cache.entry, error) result =
  let rep = Plan_cache.representative_size k.Plan_cache.k_bucket in
  let t0 = now_us () in
  (* planning: lower, validate, sanitize, prove and compile every
     candidate (memoized in the planner across buckets and
     architectures); a racy or proof-refuted variant must never be
     cached, let alone served *)
  let compiled =
    Obs.Trace.span
      ~attrs:[ ("candidates", string_of_int (List.length t.candidates)) ]
      ~name:"plan"
    @@ fun () ->
    List.filter_map
      (fun v ->
        match P.prove t.planner v with
        | Symbolic.Prove.Refuted _ -> None
        | Symbolic.Prove.Proved | Symbolic.Prove.Proved_reassoc _ -> (
            match P.compiled t.planner v with
            | cp -> Some (v, cp)
            | exception Device_ir.Validate.Invalid _ -> None
            | exception Device_ir.Race.Racy _ -> None))
      t.candidates
  in
  Stats.plan_us t.stats (now_us () -. t0);
  let t1 = now_us () in
  let ranking =
    Obs.Trace.span
      ~attrs:[ ("n", string_of_int rep) ]
      ~name:"tune"
    @@ fun () ->
    List.filter_map
      (fun (v, cp) ->
        Obs.Trace.span ~attrs:[ ("version", V.name v) ] ~name:"candidate"
        @@ fun () ->
        match Tuner.tune ~arch ~n:rep cp with
        | o ->
            Some
              {
                Plan_cache.r_version = v;
                r_tunables = o.Tuner.best;
                r_time_us = o.Tuner.best_time_us;
              }
        | exception (Invalid_argument _ | Gpusim.Interp.Sim_error _) -> None)
      compiled
  in
  (* stable: candidate order breaks ties, matching the old keep-first rule *)
  let ranking =
    List.stable_sort
      (fun a b -> compare a.Plan_cache.r_time_us b.Plan_cache.r_time_us)
      ranking
  in
  let tune_us = now_us () -. t1 in
  Stats.tune_us t.stats tune_us;
  match ranking with
  | [] ->
      Error
        (Version_fault
           (Printf.sprintf "no candidate version survived planning for %s"
              (Plan_cache.key_name k)))
  | best :: _ ->
      Ok
        {
          Plan_cache.e_version = best.Plan_cache.r_version;
          e_tunables = best.Plan_cache.r_tunables;
          e_compiled = Some (P.compiled t.planner best.Plan_cache.r_version);
          e_tuned_n = rep;
          e_tune_time_us = tune_us;
          e_ranking = ranking;
        }

let ensure (t : t) (arch : Gpusim.Arch.t) (n : int) :
    (Plan_cache.entry * bool, error) result =
  let k = key_of t arch n in
  let bucket = Plan_cache.key_name k in
  match
    Obs.Trace.span ~attrs:[ ("bucket", bucket) ] ~name:"lookup" (fun () ->
        Plan_cache.find t.cache k)
  with
  | Some e ->
      Stats.hit t.stats ~bucket;
      Ok (e, true)
  | None -> (
      Stats.miss t.stats ~bucket;
      match plan_bucket t arch k with
      | Error _ as e -> e
      | Ok e ->
          let before = Plan_cache.evictions t.cache in
          Plan_cache.add t.cache k e;
          for _ = 1 to Plan_cache.evictions t.cache - before do
            Stats.eviction t.stats
          done;
          Ok (e, false))

(* ------------------------------------------------------------------ *)
(* Circuit breakers                                                    *)
(* ------------------------------------------------------------------ *)

type availability = Av_closed | Av_half_open | Av_open

let breaker_for (t : t) (arch : string) (version : string) : breaker =
  let key = (arch, version) in
  match Hashtbl.find_opt t.breakers key with
  | Some b -> b
  | None ->
      let b = { br_faults = 0; br_open_until = 0 } in
      Hashtbl.add t.breakers key b;
      b

let availability (t : t) (b : breaker) : availability =
  if b.br_open_until = 0 then Av_closed
  else if t.tick >= b.br_open_until then Av_half_open
  else Av_open

let breaker_success (b : breaker) : unit =
  b.br_faults <- 0;
  b.br_open_until <- 0

let breaker_fault (t : t) ~(arch : string) ~(version : string) : unit =
  let b = breaker_for t arch version in
  b.br_faults <- b.br_faults + 1;
  if b.br_faults >= t.resilience.r_quarantine_threshold then begin
    (* opening (or re-opening after a failed half-open probe) is one
       quarantine event either way *)
    b.br_open_until <- t.tick + t.resilience.r_cooldown_requests;
    Stats.quarantine t.stats;
    Obs.Log.info
      ~fields:[ ("arch", arch); ("version", version) ]
      "version quarantined after %d faults (cooldown %d requests)" b.br_faults
      t.resilience.r_cooldown_requests
  end

let quarantined (t : t) ~(arch : string) ~(version : string) : bool =
  match Hashtbl.find_opt t.breakers (arch, version) with
  | Some b -> availability t b = Av_open
  | None -> false

(* ------------------------------------------------------------------ *)
(* Serving: retry, ladder walk, degraded mode                          *)
(* ------------------------------------------------------------------ *)

(* uniform jitter in [1 - j, 1 + j], drawn from the service's own seeded
   stream so backoff schedules are reproducible *)
let jitter_draw (t : t) : float =
  let s = t.jitter_state in
  t.jitter_state <-
    Int64.add (Int64.mul s 6364136223846793005L) 1442695040888963407L;
  let u =
    float_of_int (Int64.to_int (Int64.shift_right_logical s 34)) /. 1073741824.0
  in
  1.0 +. (t.resilience.r_jitter *. ((2.0 *. u) -. 1.0))

let backoff_delay_us (t : t) (attempt : int) : float =
  let r = t.resilience in
  let base =
    r.r_backoff_base_us *. (r.r_backoff_mult ** float_of_int (attempt - 1))
  in
  Float.min base r.r_backoff_max_us *. jitter_draw t

(* Per-request deadline budget, measured in simulated microseconds so
   expiry is deterministic under replay: kernel time, retry backoff and
   redundant executions all charge against it. Checks happen before new
   work starts — an answer already computed is never thrown away. *)
type budget = { b_total_us : float; mutable b_spent_us : float }

let budget_of_deadline : float option -> budget option = function
  | None -> None
  | Some d ->
      if Float.is_nan d || d <= 0.0 then
        invalid_arg "Service.submit: deadline_us must be positive";
      Some { b_total_us = d; b_spent_us = 0.0 }

let budget_charge (b : budget option) (us : float) : unit =
  match b with Some b -> b.b_spent_us <- b.b_spent_us +. us | None -> ()

let budget_exhausted : budget option -> bool = function
  | None -> false
  | Some b -> b.b_spent_us >= b.b_total_us

let budget_would_exhaust (b : budget option) (us : float) : bool =
  match b with None -> false | Some b -> b.b_spent_us +. us > b.b_total_us

type attempt_failure =
  | Af_transient of string
  | Af_fault of string
  | Af_deadline of string
      (* the budget died mid-attempt: never charged to the breaker — the
         version did nothing wrong, the client stopped waiting *)

(* One rung: run with bounded exponential-backoff retries over transient
   simulator errors. Backoff is charged to simulated time (the simulator
   has no wall clock of its own) and to the stats. *)
let attempt_rung ?(budget : budget option) (t : t) (req : request)
    (rung : Plan_cache.rung) :
    ((R.outcome * int * float), attempt_failure) result =
  let vname = V.name rung.Plan_cache.r_version in
  match P.prove t.planner rung.Plan_cache.r_version with
  | Symbolic.Prove.Refuted failures ->
      Error
        (Af_fault
           (Printf.sprintf "%s refuted by the symbolic prover: %s" vname
              (String.concat "; "
                 (List.map
                    (fun (f : Symbolic.Prove.failure) ->
                      Printf.sprintf "[%s] %s" f.Symbolic.Prove.f_code
                        f.Symbolic.Prove.f_message)
                    failures))))
  | Symbolic.Prove.Proved | Symbolic.Prove.Proved_reassoc _ -> (
  match P.compiled t.planner rung.Plan_cache.r_version with
  | exception Device_ir.Validate.Invalid errs ->
      Error
        (Af_fault
           (Printf.sprintf "%s failed to compile: %s" vname
              (Device_ir.Diag.render (Device_ir.Validate.to_diags errs))))
  | exception Device_ir.Race.Racy diags ->
      Error
        (Af_fault
           (Printf.sprintf "%s rejected by the race sanitizer: %s" vname
              (Device_ir.Diag.render (Device_ir.Diag.errors diags))))
  | cp ->
      let opts = opts_for t req.req_input in
      (* each try is its own "attempt" span (exceptions caught inside, so
         the span also times aborted runs), and each transient retry is a
         "retry" mark — a trace accounts for the full retry schedule *)
      let try_once attempt =
        Obs.Trace.span
          ~attrs:[ ("version", vname); ("attempt", string_of_int attempt) ]
          ~name:"attempt"
        @@ fun () ->
        match
          R.run_compiled ~opts ?fault:t.fault ~fault_version:vname
            ~arch:req.req_arch ~tunables:rung.Plan_cache.r_tunables
            ~input:req.req_input cp
        with
        | o -> `Done o
        | exception Gpusim.Interp.Sim_error msg -> `Transient msg
        | exception Fault.Injected (_, msg) -> `Injected msg
        | exception Invalid_argument msg -> `Invalid msg
      in
      let rec go attempt retries backoff_us =
        match try_once attempt with
        | `Done o when Float.is_nan o.R.result ->
            Error (Af_fault (Printf.sprintf "%s returned a corrupted (NaN) result" vname))
        | `Done o ->
            budget_charge budget o.R.time_us;
            Ok (o, retries, backoff_us)
        | `Transient msg ->
            if attempt <= t.resilience.r_retry_max then begin
              let delay = backoff_delay_us t attempt in
              (* the budget check happens before the sleep: a request
                 whose deadline dies during backoff stops here, without
                 spending the delay or charging the breaker *)
              if budget_would_exhaust budget delay then
                Error
                  (Af_deadline
                     (Printf.sprintf
                        "%s: deadline budget died during retry backoff \
                         (%.1f us delay would overrun it)"
                        vname delay))
              else begin
                Stats.retry t.stats;
                Obs.Trace.mark ~attrs:[ ("version", vname) ] "retry";
                Obs.Log.debug
                  ~fields:[ ("version", vname) ]
                  "transient fault, retrying (attempt %d): %s" attempt msg;
                Stats.backoff_us t.stats delay;
                budget_charge budget delay;
                go (attempt + 1) (retries + 1) (backoff_us +. delay)
              end
            end
            else
              Error
                (Af_transient
                   (Printf.sprintf "%s: transient retries exhausted (%s)" vname
                      msg))
        | `Injected msg -> Error (Af_fault msg)
        | `Invalid msg -> Error (Af_fault (Printf.sprintf "%s: %s" vname msg))
      in
      go 1 0 0.0)

let response_of_outcome (t : t) (req : request) (rung : Plan_cache.rung)
    ~(hit : bool) ~(fallback : int) ~(retries : int) ~(backoff_us : float)
    ~(started_us : float) (o : R.outcome) : response =
  Stats.winner t.stats (V.name rung.Plan_cache.r_version);
  if fallback > 0 then Stats.fallback t.stats;
  (* profiling is the first rung of the brownout ladder: the cheapest
     work to shed, and invisible to the answer *)
  if t.profile && t.brownout >= 1 then Stats.brownout_shed t.stats ~what:"profile";
  if t.profile && t.brownout < 1 then
    Stats.kernel t.stats ~arch:req.req_arch.Gpusim.Arch.name
      ~version:(V.name rung.Plan_cache.r_version)
      (Gpusim.Events.totals_of_list
         (List.map
            (fun (lr : Gpusim.Interp.launch_result) -> lr.Gpusim.Interp.lr_events)
            o.R.launch_results));
  {
    resp_value = o.R.result;
    resp_exact = o.R.exact;
    resp_sim_us = o.R.time_us +. backoff_us;
    resp_version = rung.Plan_cache.r_version;
    resp_tunables = rung.Plan_cache.r_tunables;
    resp_hit = hit;
    resp_bucket = Plan_cache.bucket_of_size (R.input_size req.req_input);
    resp_service_us = now_us () -. started_us;
    resp_degraded = false;
    resp_retries = retries;
    resp_fallback = fallback;
  }

(* The degraded path: when every rung of the ladder is quarantined or
   faulting, compute the answer on the host via the planner's reference
   and say so, rather than failing the request. *)
let degraded_response (t : t) (req : request) (e : Plan_cache.entry)
    ~(hit : bool) ~(started_us : float) : response =
  Stats.degrade t.stats;
  Stats.winner t.stats "host-reference (degraded)";
  Obs.Trace.mark "degraded";
  Obs.Log.info "every rung down; serving the host reference (degraded)";
  {
    resp_value = P.reference_input t.planner req.req_input;
    resp_exact = true;
    resp_sim_us = 0.0;
    resp_version = e.Plan_cache.e_version;
    resp_tunables = [];
    resp_hit = hit;
    resp_bucket = Plan_cache.bucket_of_size (R.input_size req.req_input);
    resp_service_us = now_us () -. started_us;
    resp_degraded = true;
    resp_retries = 0;
    resp_fallback = List.length (Plan_cache.ladder e);
  }

(* Brownout level 4, the last ladder step: the device path itself is
   shed — no planning, no tuning, no simulation — and the host reference
   answers every request until the controller lowers the level. *)
let brownout_degraded_response (t : t) (req : request) ~(started_us : float) :
    response =
  Stats.degrade t.stats;
  Stats.winner t.stats "host-reference (brownout)";
  Obs.Trace.mark "degraded";
  Obs.Log.warn "brownout level 4: serving the host reference (degraded)";
  {
    resp_value = P.reference_input t.planner req.req_input;
    resp_exact = true;
    resp_sim_us = 0.0;
    resp_version = List.hd t.candidates;
    resp_tunables = [];
    resp_hit = false;
    resp_bucket = Plan_cache.bucket_of_size (R.input_size req.req_input);
    resp_service_us = now_us () -. started_us;
    resp_degraded = true;
    resp_retries = 0;
    resp_fallback = 0;
  }

(* ------------------------------------------------------------------ *)
(* The SDC guard: witness verification and redundant-execution voting  *)
(* ------------------------------------------------------------------ *)

(* Serving path of last resort for a confirmed corruption: no execution
   agreed with the witness, so the witness itself (host recompute,
   trusted) answers, flagged degraded like the quarantine-exhausted
   path. *)
let sdc_degraded_response (t : t) (req : request) (rung : Plan_cache.rung)
    ~(hit : bool) ~(fallback : int) ~(started_us : float) (value : float) :
    response =
  Stats.degrade t.stats;
  Stats.winner t.stats "host-reference (sdc)";
  Obs.Trace.mark "degraded";
  Obs.Log.info
    "confirmed corruption with no in-tolerance execution; serving the witness \
     value (degraded)";
  {
    resp_value = value;
    resp_exact = true;
    resp_sim_us = 0.0;
    resp_version = rung.Plan_cache.r_version;
    resp_tunables = [];
    resp_hit = hit;
    resp_bucket = Plan_cache.bucket_of_size (R.input_size req.req_input);
    resp_service_us = now_us () -. started_us;
    resp_degraded = true;
    resp_retries = 0;
    resp_fallback = fallback;
  }

(* A witness already in hand serves the request when re-execution is off
   the table — the deadline budget died, or the brownout ladder shed
   redundant execution. No breaker is charged on either path: no
   corruption was confirmed, the service just stopped double-checking. *)
let witness_degraded_response (t : t) (req : request) (rung : Plan_cache.rung)
    ~(winner : string) ~(hit : bool) ~(fallback : int) ~(started_us : float)
    (value : float) : response =
  Stats.degrade t.stats;
  Stats.winner t.stats winner;
  Obs.Trace.mark "degraded";
  {
    resp_value = value;
    resp_exact = true;
    resp_sim_us = 0.0;
    resp_version = rung.Plan_cache.r_version;
    resp_tunables = [];
    resp_hit = hit;
    resp_bucket = Plan_cache.bucket_of_size (R.input_size req.req_input);
    resp_service_us = now_us () -. started_us;
    resp_degraded = true;
    resp_retries = 0;
    resp_fallback = fallback;
  }

(* Every exact result is checked against the witness before it leaves
   the service. A rejected result is re-executed on its own rung first
   (dual-modular: a one-off flip cannot reproduce — the simulator is
   deterministic modulo injection), then down the ladder within the vote
   budget; the first execution the witness accepts serves the request.
   Each confirmed corruption charges an [Sdc] fault to its version's
   breaker — enough of them quarantine the version exactly like loud
   faults do. A deviation that reproduces bit-for-bit on its own rung is
   a false alarm (charged to the tolerance model, not the version).
   When nothing the ladder produces is acceptable, the witness value
   itself serves (degraded), or [Error (Sdc _)] when degraded mode is
   off: an out-of-tolerance answer is never returned. *)
let verify_and_serve ?(budget : budget option) (t : t) (req : request)
    (e : Plan_cache.entry) ~(hit : bool) ~(started_us : float) (idx : int)
    (rung : Plan_cache.rung) (o : R.outcome) (retries : int)
    (backoff_us : float) : (response, error) result =
  if not (t.guard.Guard.g_enabled && o.R.exact) then
    Ok
      (response_of_outcome t req rung ~hit ~fallback:idx ~retries ~backoff_us
         ~started_us o)
  else begin
    Obs.Trace.span
      ~attrs:[ ("version", V.name rung.Plan_cache.r_version) ]
      ~name:"verify"
    @@ fun () ->
    let t0 = now_us () in
    Stats.sdc_check t.stats;
    mon t (fun m -> Obs.Metrics.inc m.m_sdc_checks);
    (* brownout level 3 sheds witness sampling density: the check still
       runs, but at the cheapest sample count *)
    let sample =
      if t.brownout >= 3 && t.guard.Guard.g_sample > 1 then begin
        Stats.brownout_shed t.stats ~what:"witness-sample";
        1
      end
      else t.guard.Guard.g_sample
    in
    let ck =
      Obs.Trace.span ~name:"witness" @@ fun () ->
      Guard.make ~planner:t.planner ~version:rung.Plan_cache.r_version
        ~input:req.req_input ~sample ()
    in
    let finish idx rung o retries backoff_us =
      Stats.verify_us t.stats (now_us () -. t0);
      Ok
        (response_of_outcome t req rung ~hit ~fallback:idx ~retries ~backoff_us
           ~started_us o)
    in
    if Guard.acceptable ck ~got:o.R.result then finish idx rung o retries backoff_us
    else begin
      let arch = req.req_arch.Gpusim.Arch.name in
      (* the witness value is in hand: the deadline/brownout paths below
         serve it directly instead of erroring, and charge no breaker *)
      let serve_witness winner =
        Stats.verify_us t.stats (now_us () -. t0);
        Ok
          (witness_degraded_response t req rung ~winner ~hit ~fallback:idx
             ~started_us (Guard.expected ck))
      in
      let deadline_witness () =
        Stats.deadline_witness_serve t.stats;
        Obs.Log.warn
          ~fields:[ ("version", V.name rung.Plan_cache.r_version) ]
          "deadline budget died before redundant execution; serving the \
           witness value (degraded)";
        serve_witness "host-reference (deadline)"
      in
      let confirm_sdc (r : Plan_cache.rung) =
        let vname = V.name r.Plan_cache.r_version in
        Stats.sdc_catch t.stats;
        mon t (fun m ->
            Obs.Metrics.inc m.m_sdc_caught;
            m.m_pending_sdc <- m.m_pending_sdc + 1);
        Stats.fault t.stats ~version:vname;
        Obs.Log.info
          ~fields:[ ("arch", arch); ("version", vname) ]
          "silent data corruption confirmed";
        breaker_fault t ~arch ~version:vname
      in
      if t.brownout >= 2 then begin
        (* brownout level 2 sheds redundant execution: the witness value
           serves, and no corruption verdict is reached — the breaker is
           only ever charged on evidence the service actually gathered *)
        Stats.brownout_shed t.stats ~what:"reexec";
        Obs.Log.warn
          ~fields:[ ("version", V.name rung.Plan_cache.r_version) ]
          "witness rejected a result under brownout; redundant execution \
           shed, serving the witness value (degraded)";
        serve_witness "host-reference (brownout)"
      end
      else if budget_exhausted budget then deadline_witness ()
      else begin
        (* 1. dual-modular re-execution on the suspect's own rung *)
        Stats.sdc_reexec t.stats;
        let same =
          Obs.Trace.span
            ~attrs:[ ("version", V.name rung.Plan_cache.r_version) ]
            ~name:"reexec"
            (fun () -> attempt_rung ?budget t req rung)
        in
        match same with
        | Ok (o2, r2, b2) when Guard.acceptable ck ~got:o2.R.result ->
            (* the deviation vanished on re-run: one-off corruption *)
            confirm_sdc rung;
            finish idx rung o2 (retries + r2) (backoff_us +. b2)
        | Error (Af_deadline _) -> deadline_witness ()
        | _ ->
            let reproduced =
              match same with
              | Ok (o2, _, _) -> Guard.agree ck o2.R.result o.R.result
              | Error _ -> false
            in
            if reproduced then Stats.sdc_false_alarm t.stats
            else confirm_sdc rung;
            (* 2. vote down the remaining rungs *)
            let rec drop n l =
              if n <= 0 then l
              else match l with [] -> [] | _ :: rest -> drop (n - 1) rest
            in
            let rec vote votes cidx rungs =
              if votes <= 0 then `Spent
              else if budget_exhausted budget then `Deadline
              else
                match rungs with
                | [] -> `Spent
                | (c : Plan_cache.rung) :: more ->
                    let vname = V.name c.Plan_cache.r_version in
                    if quarantined t ~arch ~version:vname then
                      vote votes (cidx + 1) more
                    else begin
                      Stats.sdc_reexec t.stats;
                      match
                        Obs.Trace.span
                          ~attrs:[ ("version", vname) ]
                          ~name:"vote"
                          (fun () -> attempt_rung ?budget t req c)
                      with
                      | Ok (o2, r2, b2)
                        when Guard.acceptable ck ~got:o2.R.result ->
                          `Agree (cidx, c, o2, r2, b2)
                      | Ok _ ->
                          confirm_sdc c;
                          vote (votes - 1) (cidx + 1) more
                      | Error (Af_deadline _) -> `Deadline
                      | Error _ ->
                          Stats.fault t.stats ~version:vname;
                          breaker_fault t ~arch ~version:vname;
                          vote (votes - 1) (cidx + 1) more
                    end
            in
            (match
               vote (t.guard.Guard.g_votes - 1) (idx + 1)
                 (drop (idx + 1) (Plan_cache.ladder e))
             with
            | `Agree (cidx, c, o2, r2, b2) -> finish cidx c o2 r2 b2
            | `Deadline -> deadline_witness ()
            | `Spent ->
                Stats.verify_us t.stats (now_us () -. t0);
                if t.resilience.r_allow_degraded then
                  Ok
                    (sdc_degraded_response t req rung ~hit ~fallback:idx
                       ~started_us (Guard.expected ck))
                else
                  Error
                    (Sdc
                       (Printf.sprintf
                          "%s returned %.9g, witness expected %.9g (%s); no \
                           execution within tolerance"
                          (V.name rung.Plan_cache.r_version)
                          o.R.result (Guard.expected ck)
                          (Tolerance.describe (Guard.tolerance ck)))))
      end
    end
  end

(* One ladder execution, stopped before verification: the walk below
   yields the first rung that produced an outcome (plus its retry and
   backoff accounting), a deadline verdict, or "every rung down". The
   single-device path verifies the outcome immediately; the fleet path
   runs one walk per dispatched device and verifies only the winner, so
   a cancelled hedge loser never charges a response to the stats. *)
type executed = {
  ex_idx : int;
  ex_rung : Plan_cache.rung;
  ex_outcome : R.outcome;
  ex_retries : int;
  ex_backoff_us : float;
}

type exec_result =
  | Ex_served of executed
  | Ex_deadline of string
  | Ex_down of attempt_failure option

let execute_ladder ?(budget : budget option) (t : t) (req : request)
    (e : Plan_cache.entry) : exec_result =
  t.tick <- t.tick + 1;
  let arch = req.req_arch.Gpusim.Arch.name in
  let last_failure = ref None in
  let deadline = ref None in
  let rec walk idx = function
    | [] -> None
    | rung :: rest -> (
        let vname = V.name rung.Plan_cache.r_version in
        if budget_exhausted budget then begin
          deadline :=
            Some
              (Printf.sprintf
                 "deadline budget exhausted before rung %d (%s) could run" idx
                 vname);
          None
        end
        else
          let br = breaker_for t arch vname in
          match availability t br with
          | Av_open ->
              Obs.Trace.mark
                ~attrs:[ ("version", vname); ("rung", string_of_int idx) ]
                "rung.quarantined";
              walk (idx + 1) rest
          | (Av_closed | Av_half_open) as avail -> (
              match
                Obs.Trace.span
                  ~attrs:[ ("version", vname); ("rung", string_of_int idx) ]
                  ~name:"rung"
                  (fun () -> attempt_rung ?budget t req rung)
              with
              | Ok (o, retries, backoff_us) ->
                  (* faults accumulate across successes while the breaker is
                     closed (a lightly-faulting version must still trip it
                     eventually); only a successful half-open probe earns a
                     clean slate *)
                  if avail = Av_half_open then breaker_success br;
                  Some (idx, rung, o, retries, backoff_us)
              | Error (Af_deadline msg) ->
                  (* the client stopped waiting, the version did nothing
                     wrong: no fault, no breaker charge, no further rungs *)
                  deadline := Some msg;
                  None
              | Error failure ->
                  Stats.fault t.stats ~version:vname;
                  breaker_fault t ~arch ~version:vname;
                  last_failure := Some failure;
                  walk (idx + 1) rest))
  in
  match walk 0 (Plan_cache.ladder e) with
  | Some (idx, rung, o, retries, backoff_us) ->
      Ex_served
        {
          ex_idx = idx;
          ex_rung = rung;
          ex_outcome = o;
          ex_retries = retries;
          ex_backoff_us = backoff_us;
        }
  | None -> (
      match !deadline with
      | Some msg -> Ex_deadline msg
      | None -> Ex_down !last_failure)

let deadline_error (t : t) ~(arch : string) (msg : string) :
    (response, error) result =
  Stats.deadline_expire t.stats;
  Obs.Trace.mark "deadline";
  Obs.Log.warn ~fields:[ ("arch", arch) ] "deadline exceeded: %s" msg;
  Error (Deadline_exceeded msg)

(* every rung down: degraded host-reference serve, or the last failure *)
let down_result (t : t) (req : request) (e : Plan_cache.entry) ~(hit : bool)
    ~(started_us : float) (last_failure : attempt_failure option) :
    (response, error) result =
  if t.resilience.r_allow_degraded then
    Ok (degraded_response t req e ~hit ~started_us)
  else
    Error
      (match last_failure with
      | Some (Af_transient msg) -> Transient msg
      | Some (Af_fault msg) -> Version_fault msg
      | Some (Af_deadline _) | None ->
          Version_fault
            (Printf.sprintf "every version of %s is quarantined"
               (Plan_cache.key_name
                  (key_of t req.req_arch (R.input_size req.req_input)))))

let serve ?(budget : budget option) (t : t) (req : request)
    (e : Plan_cache.entry) (hit : bool) (started_us : float) :
    (response, error) result =
  let arch = req.req_arch.Gpusim.Arch.name in
  let run_started = now_us () in
  match execute_ladder ?budget t req e with
  | Ex_served ex ->
      Stats.run_us t.stats (now_us () -. run_started);
      verify_and_serve ?budget t req e ~hit ~started_us ex.ex_idx ex.ex_rung
        ex.ex_outcome ex.ex_retries ex.ex_backoff_us
  | Ex_deadline msg -> deadline_error t ~arch msg
  | Ex_down last -> down_result t req e ~hit ~started_us last

(* ------------------------------------------------------------------ *)
(* Fleet serving: routing, per-device dispatch, hedging                 *)
(* ------------------------------------------------------------------ *)

(* The health scorer's baseline: what the static cost model says this
   rung should take on this arch at this size, computed without
   executing anything and memoized per (arch, version, n, tunables).
   A prediction the analyzer cannot produce degrades to ratio 1.0 —
   the device is neither credited nor blamed for it. *)
let predicted_cost (t : t) (arch : Gpusim.Arch.t) (version : V.t)
    ~(tunables : (string * int) list) ~(n : int) : float option =
  let key = (arch.Gpusim.Arch.name, V.name version, n, tunables) in
  match Hashtbl.find_opt t.predicted_cache key with
  | Some p -> if Float.is_finite p && p > 0.0 then Some p else None
  | None ->
      let p =
        match P.static_cost ~n ~tunables arch t.planner version with
        | p -> p
        | exception _ -> Float.nan
      in
      Hashtbl.replace t.predicted_cache key p;
      if Float.is_finite p && p > 0.0 then Some p else None

let predicted_us (t : t) (arch : Gpusim.Arch.t) (rung : Plan_cache.rung)
    ~(n : int) : float option =
  predicted_cost t arch rung.Plan_cache.r_version
    ~tunables:rung.Plan_cache.r_tunables ~n

let health_ratio (t : t) (arch : Gpusim.Arch.t) (ex : executed) ~(n : int)
    ~(observed_us : float) : float =
  match predicted_us t arch ex.ex_rung ~n with
  | Some p when observed_us > 0.0 -> p /. observed_us
  | _ -> 1.0

(* the whole fleet is out: the host reference answers — a dead fleet
   degrades, it does not lose requests *)
let fleet_degraded_response (t : t) (req : request) ~(started_us : float) :
    response =
  Stats.degrade t.stats;
  Stats.winner t.stats "host-reference (fleet-down)";
  Obs.Trace.mark "degraded";
  Obs.Log.warn "no routable fleet device; serving the host reference (degraded)";
  {
    resp_value = P.reference_input t.planner req.req_input;
    resp_exact = true;
    resp_sim_us = 0.0;
    resp_version = List.hd t.candidates;
    resp_tunables = [];
    resp_hit = false;
    resp_bucket = Plan_cache.bucket_of_size (R.input_size req.req_input);
    resp_service_us = now_us () -. started_us;
    resp_degraded = true;
    resp_retries = 0;
    resp_fallback = 0;
  }

(* one attempt on one device *)
type fleet_exec =
  | Fx_served of Plan_cache.entry * bool * executed * float
      (* entry, cache hit, winning execution, observed (slowdown-inflated) us *)
  | Fx_deadline of string
  | Fx_down of Plan_cache.entry * bool * attempt_failure option
  | Fx_error of error  (* planning failed; not the device's doing *)

(* Dispatch one request to one device: the request is re-targeted at
   the device's arch (the one plan cache serves the whole heterogeneous
   fleet), the device's private fault stream is armed for the duration,
   the fail-slow profile inflates the observed time, and the health
   scorer is fed the predicted/observed ratio. Verification is NOT run
   here — the hedging layer above picks a winner first. *)
let dispatch_on ?(budget : budget option) (t : t) (fl : Fleet.t)
    (req : request) (d : Fleet.device) : fleet_exec =
  Fleet.begin_dispatch fl d;
  let arch = Fleet.arch d in
  let req = { req with req_arch = arch } in
  let n = R.input_size req.req_input in
  let saved_fault = t.fault in
  (match Fleet.fault_stream d with Some f -> t.fault <- Some f | None -> ());
  let result =
    Obs.Trace.span
      ~attrs:
        [ ("device", Fleet.label d); ("arch", arch.Gpusim.Arch.name) ]
      ~name:"device"
    @@ fun () ->
    match ensure t arch n with
    | Error e -> Fx_error e
    | Ok (entry, hit) -> (
        match execute_ladder ?budget t req entry with
        | Ex_served ex ->
            let slow = Fleet.slowdown d in
            let observed = ex.ex_outcome.R.time_us *. slow in
            (* the straggler's inflation is real time the client waits
               through: charge the deadline budget for it and let the
               response's simulated latency carry it *)
            let ex =
              if slow > 1.0 then begin
                budget_charge budget (observed -. ex.ex_outcome.R.time_us);
                { ex with ex_outcome = { ex.ex_outcome with R.time_us = observed } }
              end
              else ex
            in
            Fleet.charge_busy d observed;
            Fleet.observe fl d
              ~ratio:(health_ratio t arch ex ~n ~observed_us:observed);
            Fx_served (entry, hit, ex, observed)
        | Ex_deadline msg -> Fx_deadline msg
        | Ex_down last ->
            Fleet.observe_failure fl d;
            Fx_down (entry, hit, last))
  in
  t.fault <- saved_fault;
  Fleet.end_dispatch fl d;
  result

let submit_fleet ?(budget : budget option) (t : t) (fl : Fleet.t)
    (req : request) ~(started_us : float) : (response, error) result =
  let run_started = now_us () in
  (* route around devices that fail-stop at the moment of dispatch: the
     death is detected, the device marked dead, and the request bounces
     to the next choice — never lost *)
  let rec acquire () =
    match Fleet.route fl with
    | None -> None
    | Some d ->
        if Fleet.next_dispatch_kills d then begin
          Fleet.mark_dead fl d;
          Fleet.reroute fl;
          acquire ()
        end
        else Some d
  in
  match acquire () with
  | None -> Ok (fleet_degraded_response t req ~started_us)
  | Some d -> (
      match dispatch_on ?budget t fl req d with
      | Fx_error e -> Error e
      | Fx_deadline msg ->
          deadline_error t ~arch:(Fleet.arch d).Gpusim.Arch.name msg
      | Fx_down (entry, hit, last) ->
          (* breakers are per (arch, version) and shared fleet-wide: a
             ladder that is down on this device is down on every device
             of the same arch — degrade like the single-device path *)
          down_result t
            { req with req_arch = Fleet.arch d }
            entry ~hit ~started_us last
      | Fx_served (entry, hit, ex, observed) -> (
          (* hedged execution: past the p95-based deadline, speculate on
             a second device; first answer in virtual time wins and the
             loser is cancelled before verification, charging nothing *)
          let hedged =
            match Fleet.hedge_deadline_us fl with
            | Some dl when observed > dl -> (
                Fleet.hedge_fired fl d ~deadline_us:dl ~observed_us:observed;
                match Fleet.route ~excluding:d ~probe:false fl with
                | None -> None
                | Some d2 -> (
                    match dispatch_on ?budget t fl req d2 with
                    | Fx_served (entry2, hit2, ex2, observed2) ->
                        (* the hedge launched at the deadline: it wins
                           only if deadline + its own latency beats the
                           primary's completion *)
                        let completion2 = dl +. observed2 in
                        if completion2 < observed then begin
                          Fleet.hedge_won fl d2;
                          Some (d2, entry2, hit2, ex2, completion2)
                        end
                        else None
                    | Fx_deadline _ | Fx_down _ | Fx_error _ -> None))
            | Some _ | None -> None
          in
          let dev, entry, hit, ex, completion_us =
            match hedged with
            | Some (d2, e2, h2, ex2, c2) -> (d2, e2, h2, ex2, c2)
            | None -> (d, entry, hit, ex, observed)
          in
          Fleet.note_latency fl completion_us;
          Stats.run_us t.stats (now_us () -. run_started);
          let req = { req with req_arch = Fleet.arch dev } in
          match
            verify_and_serve ?budget t req entry ~hit ~started_us ex.ex_idx
              ex.ex_rung ex.ex_outcome ex.ex_retries ex.ex_backoff_us
          with
          | Ok r -> Ok r
          | Error e -> Error e))

(* ------------------------------------------------------------------ *)
(* Monitoring: windowed metrics, SLO burn rates, flight recorder        *)
(* ------------------------------------------------------------------ *)

let attach_monitor ?(latency_mult = 3.0) ?(interactive_max = 65536)
    ?(snapshot_every = 32) ?(capacity = 128) ?(latency_target = 0.97)
    ?(goodput_target = 0.95) (t : t) : unit =
  let reg = Obs.Metrics.create () in
  let m =
    {
      m_metrics = reg;
      m_recorder = Recorder.create ~capacity ();
      m_latency_slo =
        Obs.Slo.create
          (Obs.Slo.objective
             ~description:
               "interactive latency within the static-cost envelope"
             ~target:latency_target "latency");
      m_sdc_slo =
        Obs.Slo.create
          (Obs.Slo.objective
             ~description:"confirmed silent corruptions (zero budget)"
             ~target:1.0 "sdc");
      m_goodput_slo =
        Obs.Slo.create
          (Obs.Slo.objective
             ~description:
               "requests served exactly, neither degraded nor errored"
             ~target:goodput_target "goodput");
      m_latency_mult = latency_mult;
      m_interactive_max = interactive_max;
      m_snapshot_every = max 1 snapshot_every;
      m_now_us = 0.0;
      m_requests = 0;
      m_pending_sdc = 0;
      m_pending_eject = [];
      m_req_ok =
        Obs.Metrics.counter reg ~help:"requests answered"
          ~labels:[ ("outcome", "ok") ]
          "tangram_monitor_requests_total";
      m_req_err =
        Obs.Metrics.counter reg
          ~labels:[ ("outcome", "error") ]
          "tangram_monitor_requests_total";
      m_lat_interactive =
        Obs.Metrics.histogram reg ~help:"virtual request latency"
          ~labels:[ ("class", "interactive") ]
          "tangram_monitor_latency_us";
      m_lat_batch =
        Obs.Metrics.histogram reg
          ~labels:[ ("class", "batch") ]
          "tangram_monitor_latency_us";
      m_sdc_checks =
        Obs.Metrics.counter reg ~help:"witness checks run"
          "tangram_monitor_sdc_checks_total";
      m_sdc_caught =
        Obs.Metrics.counter reg ~help:"silent corruptions confirmed"
          "tangram_monitor_sdc_caught_total";
      m_alerts =
        Obs.Metrics.counter reg ~help:"SLO burn-rate alerts fired"
          "tangram_monitor_alerts_total";
      m_incidents =
        Obs.Metrics.counter reg
          ~help:"flight-recorder incident bundles dumped"
          "tangram_monitor_incidents_total";
      m_brownout_g =
        Obs.Metrics.gauge reg ~help:"active brownout level"
          "tangram_monitor_brownout_level";
      m_queue_depth =
        Obs.Metrics.gauge reg ~help:"admission queue depth"
          "tangram_monitor_queue_depth";
      m_fleet_healthy =
        Obs.Metrics.gauge reg ~help:"devices actively serving"
          "tangram_monitor_fleet_active";
      m_queue_wait =
        Obs.Metrics.histogram reg ~help:"virtual queue wait"
          "tangram_monitor_queue_wait_us";
      m_sheds =
        Obs.Metrics.counter reg ~help:"requests shed at admission"
          "tangram_monitor_shed_total";
    }
  in
  t.monitor <- Some m;
  (* the ring's base snapshot: the first real snapshot diffs against it *)
  Obs.Metrics.snapshot reg ~now_us:0.0

let detach_monitor (t : t) : unit = t.monitor <- None
let monitor_attached (t : t) : bool = Option.is_some t.monitor

let monitor_slo_list (m : monitor) : (string * Obs.Slo.t) list =
  [
    ("latency", m.m_latency_slo);
    ("sdc", m.m_sdc_slo);
    ("goodput", m.m_goodput_slo);
  ]

let monitor_slos_json (m : monitor) : Obs.Json.t =
  Obs.Json.Arr
    (List.map
       (fun (_, s) -> Obs.Slo.state_json s ~now_us:m.m_now_us)
       (monitor_slo_list m))

let fleet_table_json (fl : Fleet.t) : Obs.Json.t =
  Obs.Json.Arr
    (List.map
       (fun d ->
         Obs.Json.Obj
           [
             ("device", Obs.Json.Str (Fleet.label d));
             ("state", Obs.Json.Str (Fleet.state_name (Fleet.dev_state d)));
             ("health", Obs.Json.Num (Fleet.health d));
             ("dispatches", Obs.Json.Num (float_of_int (Fleet.dispatches d)));
           ])
       (Fleet.devices fl))

let window_json (w : Obs.Metrics.window) : Obs.Json.t =
  Obs.Json.Obj
    [
      ("from_us", Obs.Json.Num w.Obs.Metrics.w_from_us);
      ("to_us", Obs.Json.Num w.Obs.Metrics.w_to_us);
      ( "rows",
        Obs.Json.Arr
          (List.map
             (fun (r : Obs.Metrics.window_row) ->
               Obs.Json.Obj
                 ([
                    ("name", Obs.Json.Str r.wr_name);
                    ("kind", Obs.Json.Str (Obs.Metrics.kind_name r.wr_kind));
                    ( "labels",
                      Obs.Json.Obj
                        (List.map
                           (fun (k, v) -> (k, Obs.Json.Str v))
                           r.wr_labels) );
                    ("value", Obs.Json.Num r.wr_value);
                  ]
                 @
                 if r.wr_kind = Obs.Metrics.Histogram then
                   [
                     ("sum", Obs.Json.Num r.wr_sum);
                     ("p50", Obs.Json.Num r.wr_p50);
                     ("p95", Obs.Json.Num r.wr_p95);
                   ]
                 else []))
             w.Obs.Metrics.w_rows) );
    ]

let dump_incident (t : t) (m : monitor) (trigger : Recorder.trigger) : unit =
  Obs.Metrics.inc m.m_incidents;
  Stats.incident t.stats ~kind:(Recorder.trigger_kind trigger);
  (* freeze a window boundary so the bundle's metrics run up to the
     trigger *)
  Obs.Metrics.snapshot m.m_metrics ~now_us:m.m_now_us;
  let metrics =
    match List.rev (Obs.Metrics.windows m.m_metrics) with
    | w :: _ -> window_json w
    | [] -> Obs.Json.Null
  in
  let fleet =
    match t.fleet with Some fl -> fleet_table_json fl | None -> Obs.Json.Null
  in
  let inc =
    Recorder.dump m.m_recorder ~now_us:m.m_now_us ~trigger
      ~slos:(monitor_slos_json m) ~fleet ~brownout:t.brownout ~metrics ()
  in
  Obs.Log.warn
    ~fields:
      [
        ("code", "TOBS002");
        ("trigger", Recorder.trigger_kind trigger);
        ("seq", string_of_int inc.Recorder.in_seq);
      ]
    "flight recorder dumped an incident bundle (trigger %s)"
    (Recorder.trigger_kind trigger)

let error_kind : error -> string = function
  | Bad_request _ -> "bad-request"
  | Transient _ -> "transient"
  | Version_fault _ -> "version-fault"
  | Cache_corrupt _ -> "cache-corrupt"
  | Sdc _ -> "sdc"
  | Deadline_exceeded _ -> "deadline"

(* The per-request monitoring step, run inside the request's root span
   (so the recorder captures the right trace id): note the record,
   settle deferred corruption/ejection verdicts, feed the SLOs, step
   the alert state machines and snapshot on cadence. *)
let monitor_note (t : t) (req : request) (result : (response, error) result) :
    unit =
  match t.monitor with
  | None -> ()
  | Some m ->
      let n = R.input_size req.req_input in
      let arch = req.req_arch.Gpusim.Arch.name in
      let caught_sdc = m.m_pending_sdc > 0 in
      let latency_us, predicted, outcome =
        match result with
        | Ok r ->
            let predicted =
              match
                predicted_cost t req.req_arch r.resp_version
                  ~tunables:r.resp_tunables ~n
              with
              | Some p -> p
              | None -> 0.0
            in
            ( r.resp_sim_us,
              predicted,
              if caught_sdc then "sdc-caught"
              else if r.resp_degraded then "degraded"
              else "ok" )
        | Error e -> (0.0, 0.0, error_kind e)
      in
      m.m_requests <- m.m_requests + 1;
      m.m_now_us <- m.m_now_us +. Float.max latency_us 1.0;
      ignore
        (Recorder.note m.m_recorder ~now_us:m.m_now_us ~arch ~n
           ~predicted_us:predicted ~latency_us ~outcome ());
      (* corruption verdicts were deferred to here so the record above
         is the bundle's trigger request *)
      if caught_sdc then begin
        for _ = 1 to m.m_pending_sdc do
          Obs.Slo.observe m.m_sdc_slo ~now_us:m.m_now_us ~good:false
        done;
        m.m_pending_sdc <- 0;
        dump_incident t m Recorder.Sdc
      end
      else Obs.Slo.observe m.m_sdc_slo ~now_us:m.m_now_us ~good:true;
      let interactive = n <= m.m_interactive_max in
      (match result with
      | Ok r ->
          Obs.Metrics.inc m.m_req_ok;
          Obs.Metrics.observe
            (if interactive then m.m_lat_interactive else m.m_lat_batch)
            latency_us;
          if interactive then
            Obs.Slo.observe m.m_latency_slo ~now_us:m.m_now_us
              ~good:
                (predicted <= 0.0
                || latency_us <= m.m_latency_mult *. predicted);
          Obs.Slo.observe m.m_goodput_slo ~now_us:m.m_now_us
            ~good:(not r.resp_degraded)
      | Error _ ->
          Obs.Metrics.inc m.m_req_err;
          Obs.Slo.observe m.m_goodput_slo ~now_us:m.m_now_us ~good:false);
      Obs.Metrics.set m.m_brownout_g (float_of_int t.brownout);
      (match t.fleet with
      | Some fl ->
          Obs.Metrics.set m.m_fleet_healthy
            (float_of_int
               (List.length
                  (List.filter
                     (fun d -> Fleet.dev_state d = Fleet.Active)
                     (Fleet.devices fl))))
      | None -> ());
      List.iter
        (fun (name, slo) ->
          match Obs.Slo.evaluate slo ~now_us:m.m_now_us with
          | Some (Obs.Slo.Fired burn) ->
              Obs.Metrics.inc m.m_alerts;
              Stats.alert t.stats ~slo:name;
              Obs.Trace.mark ~attrs:[ ("slo", name) ] "slo.fired";
              Obs.Log.warn
                ~fields:
                  [
                    ("code", "TOBS001");
                    ("slo", name);
                    ("fast_burn", Printf.sprintf "%.2f" burn.Obs.Slo.br_fast);
                    ("slow_burn", Printf.sprintf "%.2f" burn.Obs.Slo.br_slow);
                  ]
                "SLO burn-rate alert fired: %s" name;
              dump_incident t m (Recorder.Alert name)
          | Some (Obs.Slo.Resolved _) ->
              Obs.Log.info ~fields:[ ("slo", name) ] "SLO alert resolved: %s"
                name
          | None -> ())
        (monitor_slo_list m);
      (* ejections recorded mid-request surface as their own bundles
         once the triggering request is in the ring *)
      List.iter
        (fun dev -> dump_incident t m (Recorder.Eject dev))
        (List.rev m.m_pending_eject);
      m.m_pending_eject <- [];
      if m.m_requests mod m.m_snapshot_every = 0 then
        Obs.Metrics.snapshot m.m_metrics ~now_us:m.m_now_us

let monitor_metrics (t : t) : Obs.Metrics.t option =
  Option.map (fun m -> m.m_metrics) t.monitor

let monitor_recorder (t : t) : Recorder.t option =
  Option.map (fun m -> m.m_recorder) t.monitor

let monitor_slos (t : t) : (string * Obs.Slo.t) list =
  match t.monitor with Some m -> monitor_slo_list m | None -> []

let monitor_now_us (t : t) : float =
  match t.monitor with Some m -> m.m_now_us | None -> 0.0

let monitor_snapshot (t : t) : unit =
  mon t (fun m -> Obs.Metrics.snapshot m.m_metrics ~now_us:m.m_now_us)

(* admission feeds: the queue lives above the service, but the monitor
   owns the instruments *)
let monitor_queue_depth (t : t) (depth : int) : unit =
  mon t (fun m -> Obs.Metrics.set m.m_queue_depth (float_of_int depth))

let monitor_queue_wait (t : t) (us : float) : unit =
  mon t (fun m -> Obs.Metrics.observe m.m_queue_wait us)

let monitor_shed (t : t) : unit = mon t (fun m -> Obs.Metrics.inc m.m_sheds)

(* reduce of nothing is the combining operation's identity, served off the
   host without touching the simulator *)
let empty_response (t : t) (req : request) ~(started_us : float) : response =
  {
    resp_value = P.reference_input t.planner req.req_input;
    resp_exact = true;
    resp_sim_us = 0.0;
    resp_version = List.hd t.candidates;
    resp_tunables = [];
    resp_hit = false;
    resp_bucket = 0;
    resp_service_us = now_us () -. started_us;
    resp_degraded = false;
    resp_retries = 0;
    resp_fallback = 0;
  }

let validate (req : request) : (unit, error) result =
  match req.req_input with
  | R.Dense _ -> Ok ()
  | R.Synthetic { n; pattern } ->
      if n < 0 then
        Error (Bad_request (Printf.sprintf "negative input size %d" n))
      else
        let plen = Array.length pattern in
        if n > 0 && plen = 0 then
          Error (Bad_request "synthetic input with an empty pattern")
        else if n > 0 && plen land (plen - 1) <> 0 then
          Error
            (Bad_request
               (Printf.sprintf "synthetic pattern length %d is not a power of two"
                  plen))
        else Ok ()

let submit_result ?deadline_us (t : t) (req : request) :
    (response, error) result =
  let budget = budget_of_deadline deadline_us in
  let body () =
    let started_us = now_us () in
    match validate req with
    | Error e ->
        Stats.bad_request t.stats;
        Error e
    | Ok () ->
        if R.input_size req.req_input = 0 then
          Ok (empty_response t req ~started_us)
        else if t.brownout >= 4 then begin
          (* the host path sheds everything device-side, the cold
             plan/tune path included — answer before even touching the
             cache *)
          Stats.brownout_shed t.stats ~what:"host-path";
          Ok (brownout_degraded_response t req ~started_us)
        end
        else (
          match t.fleet with
          | Some fl -> submit_fleet ?budget t fl req ~started_us
          | None -> (
              match ensure t req.req_arch (R.input_size req.req_input) with
              | Error e -> Error e
              | Ok (entry, hit) -> serve ?budget t req entry hit started_us))
  in
  (* the monitor notes the result inside the request's root span, so
     the flight recorder captures this request's trace id *)
  let monitored () =
    let result = body () in
    monitor_note t req result;
    result
  in
  (* one root span per request under a fresh trace id: every span the
     stack records below (lookup, plan, tune, rungs, attempts, verify...)
     lands on this request's track in the exported trace *)
  if not (Obs.Trace.enabled ()) then monitored ()
  else
    Obs.Trace.with_request
      ~attrs:
        [
          ("arch", req.req_arch.Gpusim.Arch.name);
          ("n", string_of_int (R.input_size req.req_input));
        ]
      ~name:"request" monitored

let submit ?deadline_us (t : t) (req : request) : response =
  match submit_result ?deadline_us t req with
  | Ok r -> r
  | Error e -> raise (Service_error e)

(* Two requests share one simulation when they target the same
   architecture and carry equal inputs (synthetic inputs compare by
   (n, pattern); dense inputs by contents — same data, same reduction). *)
let same_shape (a : request) (b : request) : bool =
  a.req_arch.Gpusim.Arch.name = b.req_arch.Gpusim.Arch.name
  &&
  match (a.req_input, b.req_input) with
  | R.Dense x, R.Dense y -> x == y || x = y
  | R.Synthetic sx, R.Synthetic sy ->
      sx.n = sy.n && (sx.pattern == sy.pattern || sx.pattern = sy.pattern)
  | _ -> false

let submit_batch_result ?deadline_us (t : t) (reqs : request list) :
    (response, error) result list =
  match reqs with
  | [] -> []
  | [ req ] -> [ submit_result ?deadline_us t req ]
  | _ ->
      (* group indices by shape, preserving first-seen group order *)
      let groups : (request * int list ref) list ref = ref [] in
      List.iteri
        (fun i req ->
          match List.find_opt (fun (rep, _) -> same_shape rep req) !groups with
          | Some (_, idxs) -> idxs := i :: !idxs
          | None -> groups := !groups @ [ (req, ref [ i ]) ])
        reqs;
      let n_reqs = List.length reqs in
      Stats.batch t.stats ~size:n_reqs
        ~coalesced:(n_reqs - List.length !groups);
      let responses = Array.make n_reqs None in
      List.iter
        (fun (rep, idxs) ->
          (* each coalesced group gets a fresh budget: the deadline is
             per-request, and coalesced requests share one execution *)
          let r = submit_result ?deadline_us t rep in
          List.iter (fun i -> responses.(i) <- Some r) !idxs)
        !groups;
      Array.to_list responses
      |> List.map (function Some r -> r | None -> assert false)

let submit_batch ?deadline_us (t : t) (reqs : request list) : response list =
  List.map
    (function Ok r -> r | Error e -> raise (Service_error e))
    (submit_batch_result ?deadline_us t reqs)

let report (t : t) : string = Stats.report t.stats
