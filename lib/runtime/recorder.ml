(* The black-box flight recorder.

   A fixed-capacity ring holds a lightweight record of the last N
   served requests — virtual completion time, trace id, shape, outcome,
   predicted and observed latency. Recording is O(1) and allocation-
   light on purpose: the expensive artifact (the span tree) is NOT
   captured per request; only the trace id is, and the tree is
   extracted from [Obs.Trace]'s ring lazily at incident time, when cost
   no longer matters.

   When something goes wrong — an SLO alert fires, the guard confirms a
   silent corruption, the fleet ejects a device — [dump] freezes the
   ring into a self-contained JSON incident bundle: the triggering
   request (with its span tree if the trace ring still holds it), the
   surrounding request window, the SLO table, the fleet health table,
   the active brownout level and the latest metric snapshot. The bundle
   is everything a postmortem needs without a live process to query —
   the flight-recorder contract.

   Bundles accumulate in a bounded list (oldest evicted) and can be
   written to disk by the CLI's --incident-dir. *)

module Json = Obs.Json

type record = {
  rc_seq : int;
  rc_now_us : float;  (** virtual completion time *)
  rc_tid : int;  (** trace id; 0 when tracing was off *)
  rc_arch : string;
  rc_n : int;
  rc_predicted_us : float;
  rc_latency_us : float;
  rc_outcome : string;
  rc_device : string option;
}

type trigger = Alert of string | Sdc | Eject of string

let trigger_kind = function
  | Alert _ -> "alert"
  | Sdc -> "sdc"
  | Eject _ -> "device-eject"

let trigger_detail = function
  | Alert slo -> [ ("slo", Json.Str slo) ]
  | Sdc -> []
  | Eject device -> [ ("device", Json.Str device) ]

type incident = {
  in_seq : int;  (** sequence number of the triggering request *)
  in_now_us : float;
  in_trigger : trigger;
  in_json : Json.t;
}

type t = {
  ring : record option array;
  mutable head : int;
  mutable size : int;
  mutable seq : int;
  keep : int;
  mutable incs : incident list;  (** newest first, length <= keep *)
  mutable dumped : int;  (** lifetime incident count *)
}

let default_capacity = 128
let default_keep = 16

let create ?(capacity = default_capacity) ?(keep_incidents = default_keep) ()
    : t =
  if capacity < 1 then invalid_arg "Recorder.create: capacity must be positive";
  if keep_incidents < 1 then
    invalid_arg "Recorder.create: keep_incidents must be positive";
  { ring = Array.make capacity None; head = 0; size = 0; seq = 0;
    keep = keep_incidents; incs = []; dumped = 0 }

let capacity (t : t) : int = Array.length t.ring

let note (t : t) ~(now_us : float) ~(arch : string) ~(n : int)
    ~(predicted_us : float) ~(latency_us : float) ~(outcome : string)
    ?(device : string option) () : record =
  t.seq <- t.seq + 1;
  let r =
    { rc_seq = t.seq; rc_now_us = now_us; rc_tid = Obs.Trace.current_tid ();
      rc_arch = arch; rc_n = n; rc_predicted_us = predicted_us;
      rc_latency_us = latency_us; rc_outcome = outcome; rc_device = device }
  in
  let cap = Array.length t.ring in
  t.ring.(t.head) <- Some r;
  t.head <- (t.head + 1) mod cap;
  if t.size < cap then t.size <- t.size + 1;
  r

(* buffered records, oldest first *)
let records (t : t) : record list =
  let cap = Array.length t.ring in
  let start = (t.head - t.size + cap) mod cap in
  List.init t.size (fun i ->
      match t.ring.((start + i) mod cap) with
      | Some r -> r
      | None -> assert false)

let last (t : t) : record option =
  if t.size = 0 then None
  else t.ring.((t.head - 1 + Array.length t.ring) mod Array.length t.ring)

(* ------------------------------------------------------------------ *)
(* JSON rendering                                                      *)
(* ------------------------------------------------------------------ *)

let record_json (r : record) : Json.t =
  Json.Obj
    ([
       ("seq", Json.Num (float_of_int r.rc_seq));
       ("now_us", Json.Num r.rc_now_us);
       ("tid", Json.Num (float_of_int r.rc_tid));
       ("arch", Json.Str r.rc_arch);
       ("n", Json.Num (float_of_int r.rc_n));
       ("predicted_us", Json.Num r.rc_predicted_us);
       ("latency_us", Json.Num r.rc_latency_us);
       ("outcome", Json.Str r.rc_outcome);
     ]
    @ match r.rc_device with
      | Some d -> [ ("device", Json.Str d) ]
      | None -> [])

let rec span_json (n : Obs.Trace.node) : Json.t =
  Json.Obj
    [
      ("name", Json.Str n.Obs.Trace.n_name);
      ("start_us", Json.Num n.n_start_us);
      ("dur_us", Json.Num n.n_dur_us);
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) n.n_attrs));
      ( "marks",
        Json.Arr
          (List.map
             (fun (name, attrs) ->
               Json.Obj
                 (("name", Json.Str name)
                 :: List.map (fun (k, v) -> (k, Json.Str v)) attrs))
             n.n_marks) );
      ("children", Json.Arr (List.map span_json n.n_children));
    ]

(* the trigger request's span tree, rebuilt from the trace ring by
   trace id; Null when tracing was off or the ring already evicted it *)
let span_tree_of_tid (tid : int) : Json.t =
  if tid = 0 || not (Obs.Trace.enabled ()) then Json.Null
  else
    match
      List.find_opt
        (fun (n : Obs.Trace.node) -> n.Obs.Trace.n_tid = tid)
        (Obs.Trace.forest ())
    with
    | Some n -> span_json n
    | None -> Json.Null

let schema = "tangram-incident/1"

let dump (t : t) ~(now_us : float) ~(trigger : trigger) ?(slos = Json.Null)
    ?(fleet = Json.Null) ?(brownout = 0) ?(metrics = Json.Null) () : incident =
  let trigger_rec = last t in
  let seq = match trigger_rec with Some r -> r.rc_seq | None -> t.seq in
  let request =
    match trigger_rec with
    | None -> Json.Null
    | Some r -> (
        match record_json r with
        | Json.Obj fields ->
            Json.Obj (fields @ [ ("spans", span_tree_of_tid r.rc_tid) ])
        | other -> other)
  in
  let bundle =
    Json.Obj
      [
        ("schema", Json.Str schema);
        ("seq", Json.Num (float_of_int seq));
        ("now_us", Json.Num now_us);
        ( "trigger",
          Json.Obj
            (("kind", Json.Str (trigger_kind trigger))
            :: trigger_detail trigger) );
        ("request", request);
        ("window", Json.Arr (List.map record_json (records t)));
        ("slos", slos);
        ("fleet", fleet);
        ("brownout", Json.Num (float_of_int brownout));
        ("metrics", metrics);
        ("trace_dropped", Json.Num (float_of_int (Obs.Trace.dropped ())));
      ]
  in
  let inc =
    { in_seq = seq; in_now_us = now_us; in_trigger = trigger; in_json = bundle }
  in
  t.dumped <- t.dumped + 1;
  t.incs <- inc :: t.incs;
  (let rec take k = function
     | [] -> []
     | _ when k = 0 -> []
     | x :: rest -> x :: take (k - 1) rest
   in
   t.incs <- take t.keep t.incs);
  inc

(* newest first *)
let incidents (t : t) : incident list = t.incs
let incidents_dumped (t : t) : int = t.dumped

(* ------------------------------------------------------------------ *)
(* Bundle validation (the test/CI contract)                            *)
(* ------------------------------------------------------------------ *)

let validate_bundle (doc : Json.t) : (unit, string) result =
  let mem k = Json.member k doc in
  let require k =
    match mem k with
    | Some _ -> Ok ()
    | None -> Error (Printf.sprintf "missing key %S" k)
  in
  let ( let* ) = Result.bind in
  let* () =
    match Option.bind (mem "schema") Json.to_str with
    | Some s when s = schema -> Ok ()
    | Some s -> Error (Printf.sprintf "unknown schema %S" s)
    | None -> Error "missing schema"
  in
  let* () = require "seq" in
  let* () = require "now_us" in
  let* () =
    match Option.bind (mem "trigger") (Json.member "kind") with
    | Some (Json.Str ("alert" | "sdc" | "device-eject")) -> Ok ()
    | Some (Json.Str k) -> Error (Printf.sprintf "unknown trigger kind %S" k)
    | _ -> Error "missing trigger.kind"
  in
  let* () =
    match Option.bind (mem "window") Json.to_list with
    | Some _ -> Ok ()
    | None -> Error "missing window array"
  in
  let* () = require "request" in
  let* () = require "brownout" in
  Ok ()

let validate_bundle_string (src : string) : (unit, string) result =
  match Json.of_string src with
  | Error msg -> Error ("not valid JSON: " ^ msg)
  | Ok doc -> validate_bundle doc

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)
(* ------------------------------------------------------------------ *)

let incident_to_string (inc : incident) : string = Json.to_string inc.in_json

let save_incident (inc : incident) (path : string) : unit =
  let oc = open_out path in
  output_string oc (incident_to_string inc);
  output_char oc '\n';
  close_out oc

(* one file per retained incident: <dir>/incident-<seq>-<kind>.json;
   returns the written paths, oldest incident first *)
let save_all (t : t) (dir : string) : string list =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.rev_map
    (fun inc ->
      let path =
        Filename.concat dir
          (Printf.sprintf "incident-%04d-%s.json" inc.in_seq
             (trigger_kind inc.in_trigger))
      in
      save_incident inc path;
      path)
    t.incs
