(* Analytic tolerance model for reduction results.

   The 88 generated versions all compute the same reduction, but they
   reorder it: grain loops serialise a slice per thread, shared/shuffle
   trees combine in log2 steps, and atomic finishes serialise partials
   in nondeterministic order. For integer and min/max reductions every
   order yields the same value, so the legal deviation is zero. For
   float sums each reordering accrues different rounding, so a checker
   demanding equality would reject perfectly healthy versions — the
   bound instead scales a unit-roundoff term by how many rounding steps
   the version's reduction shape (tree depth, grain chain, atomic
   fan-in) plus the sequential reference itself can perform.

   The bound is deliberately conservative (a fixed safety factor on the
   classic |err| <= steps * eps * sum|x| chain bound): a false alarm
   would send a healthy version to re-execution and, repeated, to
   quarantine, while slack only lets small flips through — and a flip
   below reassociation noise is indistinguishable from a legal answer
   anyway. *)

module V = Synthesis.Version
module Ir = Device_ir.Ir

type t = Exact | Absolute of float

let safety = 8.0

(* Rounding-step count of a version's reduction shape for input size
   [n]: intra-block chain/tree depth plus the fan-in of the grid-level
   finish (atomic finishes serialise one partial per block). Block size
   is not known until tuning, so the worst block shape (1024 threads)
   is assumed — more blocks means more fan-in, a longer chain and a
   larger (still safe) bound. *)
let steps (v : V.t) (n : int) : float =
  let nf = float_of_int (max n 1) in
  let block = 1024.0 in
  let blocks = Float.max 1.0 (Float.of_int ((max n 1 + 1023) / 1024)) in
  let tree = Float.log block /. Float.log 2.0 in
  let intra =
    match v.V.block with
    | V.Direct _ -> tree
    | V.Compound _ -> (nf /. (block *. blocks)) +. tree
    | V.Direct_global_atomic -> 1.0
  in
  let fanin =
    match v.V.grid_finish with
    | V.Atomic | V.Hierarchical _ -> blocks
  in
  intra +. fanin

let bound ~(op : Tir.Ast.atomic_kind) ~(elem : Ir.scalar) ?version ~(n : int)
    ~(sum_abs : float) () : t =
  match (op, elem) with
  | _, (Ir.I32 | Ir.U32 | Ir.Pred) -> Exact
  | (Tir.Ast.At_min | Tir.Ast.At_max), Ir.F32 ->
      (* min/max are order-independent and round nothing *)
      Exact
  | (Tir.Ast.At_add | Tir.Ast.At_sub), Ir.F32 ->
      let nf = float_of_int (max n 1) in
      (* the sequential host reference accrues up to n-1 rounding steps
         of its own, so the distance between reference and version is
         bounded by the sum of both chains, not the version's alone *)
      let chain =
        nf +. (match version with Some v -> steps v n | None -> nf)
      in
      let b = safety *. epsilon_float *. chain *. sum_abs in
      (* an all-zero (or single-element) input has sum_abs ~ 0; keep a
         tiny absolute floor so the bound never collapses to exactly 0
         for float comparisons *)
      Absolute (Float.max b 1e-12)

(* A reassociation certificate from the symbolic prover records the
   machine-measured rounding-step depth of one proved geometry (version
   term depth plus reference chain depth). The [Absolute] bound derived
   from [steps] tolerates [safety] times its analytic chain, so it
   covers the certified reassociation iff the measured depth stays under
   that safety-scaled chain. The [steps] shape model assumes 1024-thread
   blocks; proof geometries tune much smaller blocks (a longer atomic
   fan-in at tiny sizes), which the safety factor absorbs. *)
let admits_certificate ?(version : V.t option) (c : Symbolic.Prove.cert) : bool
    =
  let n = max c.Symbolic.Prove.c_n 1 in
  let nf = float_of_int n in
  let analytic = nf +. (match version with Some v -> steps v n | None -> nf) in
  float_of_int (c.Symbolic.Prove.c_depth + c.Symbolic.Prove.c_ref_depth)
  <= safety *. analytic

let acceptable (t : t) ~(expected : float) ~(got : float) : bool =
  match t with
  | Exact -> got = expected
  | Absolute b ->
      (match Float.classify_float got with
      | Float.FP_nan | Float.FP_infinite -> false
      | _ -> Float.abs (got -. expected) <= b)

let margin (t : t) ~(expected : float) ~(got : float) : float =
  let dev = Float.abs (got -. expected) in
  match t with Exact -> dev | Absolute b -> dev /. b

let describe = function
  | Exact -> "exact"
  | Absolute b -> Printf.sprintf "|dev| <= %.3g" b

(* Exact |x_0| + ... + |x_{n-1}| for either runner input shape, in
   closed form for synthetic buffers (one pass over the pattern, never
   over the logical 268M elements). *)
let sum_abs_of_input (input : Gpusim.Runner.input) : float =
  match input with
  | Gpusim.Runner.Dense a ->
      Array.fold_left (fun acc x -> acc +. Float.abs x) 0.0 a
  | Gpusim.Runner.Synthetic { n; pattern } ->
      let plen = Array.length pattern in
      if n <= 0 || plen = 0 then 0.0
      else begin
        let prefix m =
          let s = ref 0.0 in
          for i = 0 to m - 1 do
            s := !s +. Float.abs pattern.(i)
          done;
          !s
        in
        let cycles = n / plen and rem = n mod plen in
        (float_of_int cycles *. prefix plen) +. prefix rem
      end
