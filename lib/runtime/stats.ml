(* Service metrics: cache hit/miss counts per bucket, plan/tune/run
   latency distributions (p50/p95/max over growable sample buffers),
   eviction and batching counters, and a winning-version histogram. *)

type series = {
  count : int;
  mean : float;
  p50 : float;
  p95 : float;
  max : float;
}

(* growable sample buffer; percentiles are computed at report time *)
type samples = { mutable data : float array; mutable len : int }

let samples_create () = { data = Array.make 64 0.0; len = 0 }

let sample (s : samples) (x : float) : unit =
  if s.len = Array.length s.data then begin
    let bigger = Array.make (2 * s.len) 0.0 in
    Array.blit s.data 0 bigger 0 s.len;
    s.data <- bigger
  end;
  s.data.(s.len) <- x;
  s.len <- s.len + 1

let percentile (sorted : float array) (p : float) : float =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) idx))

let summarize (s : samples) : series =
  if s.len = 0 then { count = 0; mean = 0.0; p50 = 0.0; p95 = 0.0; max = 0.0 }
  else begin
    let sorted = Array.sub s.data 0 s.len in
    Array.sort compare sorted;
    let total = Array.fold_left ( +. ) 0.0 sorted in
    {
      count = s.len;
      mean = total /. float_of_int s.len;
      p50 = percentile sorted 0.50;
      p95 = percentile sorted 0.95;
      max = sorted.(s.len - 1);
    }
  end

type counters = { mutable c_hits : int; mutable c_misses : int }

type t = {
  buckets : (string, counters) Hashtbl.t;
  winners : (string, int) Hashtbl.t;
  version_faults : (string, int) Hashtbl.t;
  plan : samples;
  tune : samples;
  run : samples;
  verify : samples;
  mutable total_hits : int;
  mutable total_misses : int;
  mutable total_evictions : int;
  mutable total_batches : int;
  mutable total_coalesced : int;
  mutable total_retries : int;
  mutable total_faults : int;
  mutable total_quarantines : int;
  mutable total_fallbacks : int;
  mutable total_degraded : int;
  mutable total_bad_requests : int;
  mutable backoff_total_us : float;
  mutable total_sdc_checks : int;
  mutable total_sdc_catches : int;
  mutable total_sdc_false_alarms : int;
  mutable total_sdc_reexecs : int;
}

let create () : t =
  {
    buckets = Hashtbl.create 32;
    winners = Hashtbl.create 32;
    version_faults = Hashtbl.create 32;
    plan = samples_create ();
    tune = samples_create ();
    run = samples_create ();
    verify = samples_create ();
    total_hits = 0;
    total_misses = 0;
    total_evictions = 0;
    total_batches = 0;
    total_coalesced = 0;
    total_retries = 0;
    total_faults = 0;
    total_quarantines = 0;
    total_fallbacks = 0;
    total_degraded = 0;
    total_bad_requests = 0;
    backoff_total_us = 0.0;
    total_sdc_checks = 0;
    total_sdc_catches = 0;
    total_sdc_false_alarms = 0;
    total_sdc_reexecs = 0;
  }

let counters_for (t : t) (bucket : string) : counters =
  match Hashtbl.find_opt t.buckets bucket with
  | Some c -> c
  | None ->
      let c = { c_hits = 0; c_misses = 0 } in
      Hashtbl.add t.buckets bucket c;
      c

let hit (t : t) ~bucket =
  let c = counters_for t bucket in
  c.c_hits <- c.c_hits + 1;
  t.total_hits <- t.total_hits + 1

let miss (t : t) ~bucket =
  let c = counters_for t bucket in
  c.c_misses <- c.c_misses + 1;
  t.total_misses <- t.total_misses + 1

let eviction (t : t) = t.total_evictions <- t.total_evictions + 1

let winner (t : t) (version : string) : unit =
  Hashtbl.replace t.winners version
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.winners version))

let plan_us (t : t) (x : float) = sample t.plan x
let tune_us (t : t) (x : float) = sample t.tune x
let run_us (t : t) (x : float) = sample t.run x

let batch (t : t) ~size:_ ~coalesced =
  t.total_batches <- t.total_batches + 1;
  t.total_coalesced <- t.total_coalesced + coalesced

let retry (t : t) = t.total_retries <- t.total_retries + 1

let fault (t : t) ~(version : string) : unit =
  t.total_faults <- t.total_faults + 1;
  Hashtbl.replace t.version_faults version
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.version_faults version))

let quarantine (t : t) = t.total_quarantines <- t.total_quarantines + 1
let fallback (t : t) = t.total_fallbacks <- t.total_fallbacks + 1
let degrade (t : t) = t.total_degraded <- t.total_degraded + 1
let bad_request (t : t) = t.total_bad_requests <- t.total_bad_requests + 1
let backoff_us (t : t) (x : float) = t.backoff_total_us <- t.backoff_total_us +. x
let sdc_check (t : t) = t.total_sdc_checks <- t.total_sdc_checks + 1
let sdc_catch (t : t) = t.total_sdc_catches <- t.total_sdc_catches + 1

let sdc_false_alarm (t : t) =
  t.total_sdc_false_alarms <- t.total_sdc_false_alarms + 1

let sdc_reexec (t : t) = t.total_sdc_reexecs <- t.total_sdc_reexecs + 1
let verify_us (t : t) (x : float) = sample t.verify x

let hits t = t.total_hits
let misses t = t.total_misses
let evictions t = t.total_evictions
let batches t = t.total_batches
let coalesced t = t.total_coalesced
let retries t = t.total_retries
let faults t = t.total_faults
let quarantines t = t.total_quarantines
let fallbacks t = t.total_fallbacks
let degraded t = t.total_degraded
let bad_requests t = t.total_bad_requests
let backoff_total_us t = t.backoff_total_us
let sdc_checks t = t.total_sdc_checks
let sdc_catches t = t.total_sdc_catches
let sdc_false_alarms t = t.total_sdc_false_alarms
let sdc_reexecs t = t.total_sdc_reexecs

let fault_histogram (t : t) : (string * int) list =
  Hashtbl.fold (fun v n acc -> (v, n) :: acc) t.version_faults []
  |> List.sort (fun (va, a) (vb, b) -> compare (b, va) (a, vb))

let bucket_counts (t : t) : (string * (int * int)) list =
  Hashtbl.fold (fun b c acc -> (b, (c.c_hits, c.c_misses)) :: acc) t.buckets []
  |> List.sort compare

let winner_histogram (t : t) : (string * int) list =
  Hashtbl.fold (fun v n acc -> (v, n) :: acc) t.winners []
  |> List.sort (fun (va, a) (vb, b) -> compare (b, va) (a, vb))

let plan_series t = summarize t.plan
let tune_series t = summarize t.tune
let run_series t = summarize t.run
let verify_series t = summarize t.verify

let report (t : t) : string =
  let b = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "=== service metrics ===\n";
  let lookups = t.total_hits + t.total_misses in
  pr "cache: %d lookups, %d hits, %d misses (%.1f%% hit rate), %d evictions\n"
    lookups t.total_hits t.total_misses
    (if lookups = 0 then 0.0
     else 100.0 *. float_of_int t.total_hits /. float_of_int lookups)
    t.total_evictions;
  if t.total_batches > 0 then
    pr "batching: %d batches dispatched, %d requests coalesced\n" t.total_batches
      t.total_coalesced;
  pr "\nper-bucket lookups (hits/misses):\n";
  List.iter
    (fun (bucket, (h, m)) -> pr "  %-40s %6d / %d\n" bucket h m)
    (bucket_counts t);
  (* a bucket with no samples renders "-", not a misleading 0.0 *)
  let series name (s : series) =
    if s.count > 0 then
      pr "  %-6s %6d samples   p50 %10.1f us   p95 %10.1f us   max %10.1f us\n"
        name s.count s.p50 s.p95 s.max
    else
      pr "  %-6s %6d samples   p50 %10s us   p95 %10s us   max %10s us\n" name 0
        "-" "-" "-"
  in
  pr "\nlatencies (host wall clock):\n";
  series "plan" (plan_series t);
  series "tune" (tune_series t);
  series "run" (run_series t);
  pr "\nwinning versions (requests served):\n";
  List.iter (fun (v, n) -> pr "  %-34s %6d\n" v n) (winner_histogram t);
  (* the fault-tolerance section appears only once something failed, so a
     fault-free service prints exactly the report it always did *)
  if
    t.total_faults + t.total_retries + t.total_quarantines + t.total_fallbacks
    + t.total_degraded + t.total_bad_requests
    > 0
  then begin
    pr "\nfault tolerance:\n";
    pr "  faults %d   retries %d   backoff (simulated) %.1f us\n" t.total_faults
      t.total_retries t.backoff_total_us;
    pr "  quarantine events %d   fallback serves %d   degraded serves %d   bad requests %d\n"
      t.total_quarantines t.total_fallbacks t.total_degraded
      t.total_bad_requests;
    match fault_histogram t with
    | [] -> ()
    | hist ->
        pr "  faults by version:\n";
        List.iter (fun (v, n) -> pr "    %-32s %6d\n" v n) hist
  end;
  (* like the fault section, the guard section appears only once a check
     actually tripped (catch, false alarm or re-execution) — a clean run
     prints exactly the report it always did, even with the guard on *)
  if t.total_sdc_catches + t.total_sdc_false_alarms + t.total_sdc_reexecs > 0
  then begin
    pr "\nsilent-data-corruption guard:\n";
    pr "  checks %d   caught %d   re-executions %d   false alarms %d (%.2f%% of checks)\n"
      t.total_sdc_checks t.total_sdc_catches t.total_sdc_reexecs
      t.total_sdc_false_alarms
      (if t.total_sdc_checks = 0 then 0.0
       else
         100.0
         *. float_of_int t.total_sdc_false_alarms
         /. float_of_int t.total_sdc_checks);
    let v = summarize t.verify in
    if v.count > 0 then
      pr "  verify overhead: p50 %.1f us   p95 %.1f us   max %.1f us\n" v.p50
        v.p95 v.max
  end;
  Buffer.contents b
