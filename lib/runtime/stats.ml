(* Service metrics: cache hit/miss counts per bucket, plan/tune/run
   latency distributions (p50/p95/max over growable sample buffers),
   eviction and batching counters, and a winning-version histogram. *)

type series = {
  count : int;
  mean : float;
  p50 : float;
  p95 : float;
  max : float;
}

(* growable sample buffer; percentiles are computed at report time *)
type samples = { mutable data : float array; mutable len : int }

let samples_create () = { data = Array.make 64 0.0; len = 0 }

let sample (s : samples) (x : float) : unit =
  if s.len = Array.length s.data then begin
    let bigger = Array.make (2 * s.len) 0.0 in
    Array.blit s.data 0 bigger 0 s.len;
    s.data <- bigger
  end;
  s.data.(s.len) <- x;
  s.len <- s.len + 1

let percentile (sorted : float array) (p : float) : float =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) idx))

let summarize (s : samples) : series =
  if s.len = 0 then { count = 0; mean = 0.0; p50 = 0.0; p95 = 0.0; max = 0.0 }
  else begin
    let sorted = Array.sub s.data 0 s.len in
    Array.sort compare sorted;
    let total = Array.fold_left ( +. ) 0.0 sorted in
    {
      count = s.len;
      mean = total /. float_of_int s.len;
      p50 = percentile sorted 0.50;
      p95 = percentile sorted 0.95;
      max = sorted.(s.len - 1);
    }
  end

type counters = { mutable c_hits : int; mutable c_misses : int }

(* per-(arch, version) kernel-counter aggregation: one cell per pair,
   populated only when the service has profiling on *)
type kernel_cell = {
  mutable k_requests : int;
  mutable k_totals : Gpusim.Events.totals;
}

(* per-device fleet cell: populated only when a fleet is attached, so
   the fleet report section stays absent on single-device services *)
type fleet_cell = {
  mutable f_dispatches : int;
  mutable f_hedge_wins : int;
  mutable f_ejects : int;
  mutable f_readmits : int;
  mutable f_health : float;  (* last reported health score *)
  mutable f_state : string;  (* last reported lifecycle state *)
}

type fleet_row = {
  fd_dispatches : int;
  fd_hedge_wins : int;
  fd_ejects : int;
  fd_readmits : int;
  fd_health : float;
  fd_state : string;
}

type t = {
  buckets : (string, counters) Hashtbl.t;
  winners : (string, int) Hashtbl.t;
  version_faults : (string, int) Hashtbl.t;
  kernels : (string * string, kernel_cell) Hashtbl.t;
  brownout_shed_work : (string, int) Hashtbl.t;
  plan : samples;
  tune : samples;
  run : samples;
  verify : samples;
  queue_wait : samples;
  mutable total_hits : int;
  mutable total_misses : int;
  mutable total_evictions : int;
  mutable total_batches : int;
  mutable total_coalesced : int;
  mutable total_retries : int;
  mutable total_faults : int;
  mutable total_quarantines : int;
  mutable total_fallbacks : int;
  mutable total_degraded : int;
  mutable total_bad_requests : int;
  mutable backoff_total_us : float;
  mutable total_sdc_checks : int;
  mutable total_sdc_catches : int;
  mutable total_sdc_false_alarms : int;
  mutable total_sdc_reexecs : int;
  (* overload-resilience counters: all stay zero unless the admission
     layer or a deadline budget actually fires, keeping the quiet-path
     report byte-identical *)
  mutable total_admitted_interactive : int;
  mutable total_admitted_batch : int;
  mutable total_shed_interactive : int;
  mutable total_shed_batch : int;
  mutable total_deadline_expiries : int;
  mutable total_deadline_witness_serves : int;
  mutable total_brownout_transitions : int;
  mutable brownout_max : int;
  (* fleet counters: all stay zero (and the device table empty) unless a
     fleet is attached, keeping the fleet-less report byte-identical *)
  fleet_devices : (string, fleet_cell) Hashtbl.t;
  mutable total_fleet_dispatches : int;
  mutable total_fleet_reroutes : int;
  mutable total_fleet_hedges_fired : int;
  mutable total_fleet_hedges_won : int;
  mutable total_fleet_ejects : int;
  mutable total_fleet_readmits : int;
  mutable total_fleet_deaths : int;
  mutable total_fleet_drains : int;
  mutable total_fleet_promotions : int;
  (* monitoring counters: all stay zero unless an SLO alert fires or
     the flight recorder dumps an incident, keeping the quiet-path
     report byte-identical *)
  mutable total_alerts : int;
  alerts_by_slo : (string, int) Hashtbl.t;
  mutable total_incidents : int;
  incidents_by_kind : (string, int) Hashtbl.t;
}

let create () : t =
  {
    buckets = Hashtbl.create 32;
    winners = Hashtbl.create 32;
    version_faults = Hashtbl.create 32;
    kernels = Hashtbl.create 32;
    brownout_shed_work = Hashtbl.create 8;
    plan = samples_create ();
    tune = samples_create ();
    run = samples_create ();
    verify = samples_create ();
    queue_wait = samples_create ();
    total_hits = 0;
    total_misses = 0;
    total_evictions = 0;
    total_batches = 0;
    total_coalesced = 0;
    total_retries = 0;
    total_faults = 0;
    total_quarantines = 0;
    total_fallbacks = 0;
    total_degraded = 0;
    total_bad_requests = 0;
    backoff_total_us = 0.0;
    total_sdc_checks = 0;
    total_sdc_catches = 0;
    total_sdc_false_alarms = 0;
    total_sdc_reexecs = 0;
    total_admitted_interactive = 0;
    total_admitted_batch = 0;
    total_shed_interactive = 0;
    total_shed_batch = 0;
    total_deadline_expiries = 0;
    total_deadline_witness_serves = 0;
    total_brownout_transitions = 0;
    brownout_max = 0;
    fleet_devices = Hashtbl.create 8;
    total_fleet_dispatches = 0;
    total_fleet_reroutes = 0;
    total_fleet_hedges_fired = 0;
    total_fleet_hedges_won = 0;
    total_fleet_ejects = 0;
    total_fleet_readmits = 0;
    total_fleet_deaths = 0;
    total_fleet_drains = 0;
    total_fleet_promotions = 0;
    total_alerts = 0;
    alerts_by_slo = Hashtbl.create 4;
    total_incidents = 0;
    incidents_by_kind = Hashtbl.create 4;
  }

let counters_for (t : t) (bucket : string) : counters =
  match Hashtbl.find_opt t.buckets bucket with
  | Some c -> c
  | None ->
      let c = { c_hits = 0; c_misses = 0 } in
      Hashtbl.add t.buckets bucket c;
      c

let hit (t : t) ~bucket =
  let c = counters_for t bucket in
  c.c_hits <- c.c_hits + 1;
  t.total_hits <- t.total_hits + 1

let miss (t : t) ~bucket =
  let c = counters_for t bucket in
  c.c_misses <- c.c_misses + 1;
  t.total_misses <- t.total_misses + 1

let eviction (t : t) = t.total_evictions <- t.total_evictions + 1

let winner (t : t) (version : string) : unit =
  Hashtbl.replace t.winners version
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.winners version))

let plan_us (t : t) (x : float) = sample t.plan x
let tune_us (t : t) (x : float) = sample t.tune x
let run_us (t : t) (x : float) = sample t.run x

let batch (t : t) ~size:_ ~coalesced =
  t.total_batches <- t.total_batches + 1;
  t.total_coalesced <- t.total_coalesced + coalesced

let retry (t : t) = t.total_retries <- t.total_retries + 1

let fault (t : t) ~(version : string) : unit =
  t.total_faults <- t.total_faults + 1;
  Hashtbl.replace t.version_faults version
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.version_faults version))

let quarantine (t : t) = t.total_quarantines <- t.total_quarantines + 1
let fallback (t : t) = t.total_fallbacks <- t.total_fallbacks + 1
let degrade (t : t) = t.total_degraded <- t.total_degraded + 1
let bad_request (t : t) = t.total_bad_requests <- t.total_bad_requests + 1
let backoff_us (t : t) (x : float) = t.backoff_total_us <- t.backoff_total_us +. x
let sdc_check (t : t) = t.total_sdc_checks <- t.total_sdc_checks + 1
let sdc_catch (t : t) = t.total_sdc_catches <- t.total_sdc_catches + 1

let sdc_false_alarm (t : t) =
  t.total_sdc_false_alarms <- t.total_sdc_false_alarms + 1

let sdc_reexec (t : t) = t.total_sdc_reexecs <- t.total_sdc_reexecs + 1
let verify_us (t : t) (x : float) = sample t.verify x

let admit (t : t) ~(interactive : bool) : unit =
  if interactive then
    t.total_admitted_interactive <- t.total_admitted_interactive + 1
  else t.total_admitted_batch <- t.total_admitted_batch + 1

let shed_request (t : t) ~(interactive : bool) : unit =
  if interactive then t.total_shed_interactive <- t.total_shed_interactive + 1
  else t.total_shed_batch <- t.total_shed_batch + 1

let deadline_expire (t : t) =
  t.total_deadline_expiries <- t.total_deadline_expiries + 1

let deadline_witness_serve (t : t) =
  t.total_deadline_witness_serves <- t.total_deadline_witness_serves + 1

let brownout_transition (t : t) ~(level : int) : unit =
  t.total_brownout_transitions <- t.total_brownout_transitions + 1;
  if level > t.brownout_max then t.brownout_max <- level

let brownout_shed (t : t) ~(what : string) : unit =
  Hashtbl.replace t.brownout_shed_work what
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.brownout_shed_work what))

let queue_wait_us (t : t) (x : float) = sample t.queue_wait x

let fleet_cell_for (t : t) (device : string) : fleet_cell =
  match Hashtbl.find_opt t.fleet_devices device with
  | Some c -> c
  | None ->
      let c =
        {
          f_dispatches = 0;
          f_hedge_wins = 0;
          f_ejects = 0;
          f_readmits = 0;
          f_health = 1.0;
          f_state = "active";
        }
      in
      Hashtbl.add t.fleet_devices device c;
      c

let fleet_dispatch (t : t) ~(device : string) : unit =
  let c = fleet_cell_for t device in
  c.f_dispatches <- c.f_dispatches + 1;
  t.total_fleet_dispatches <- t.total_fleet_dispatches + 1

let fleet_health (t : t) ~(device : string) (health : float) : unit =
  (fleet_cell_for t device).f_health <- health

let fleet_state (t : t) ~(device : string) (state : string) : unit =
  (fleet_cell_for t device).f_state <- state

let fleet_eject (t : t) ~(device : string) : unit =
  let c = fleet_cell_for t device in
  c.f_ejects <- c.f_ejects + 1;
  t.total_fleet_ejects <- t.total_fleet_ejects + 1

let fleet_readmit (t : t) ~(device : string) : unit =
  let c = fleet_cell_for t device in
  c.f_readmits <- c.f_readmits + 1;
  t.total_fleet_readmits <- t.total_fleet_readmits + 1

let fleet_dead (t : t) ~(device : string) : unit =
  ignore (fleet_cell_for t device);
  t.total_fleet_deaths <- t.total_fleet_deaths + 1

let fleet_drain (t : t) ~(device : string) : unit =
  ignore (fleet_cell_for t device);
  t.total_fleet_drains <- t.total_fleet_drains + 1

let fleet_promote (t : t) ~(device : string) : unit =
  ignore (fleet_cell_for t device);
  t.total_fleet_promotions <- t.total_fleet_promotions + 1

let fleet_reroute (t : t) = t.total_fleet_reroutes <- t.total_fleet_reroutes + 1

let fleet_hedge_fired (t : t) =
  t.total_fleet_hedges_fired <- t.total_fleet_hedges_fired + 1

let fleet_hedge_won (t : t) ~(device : string) : unit =
  let c = fleet_cell_for t device in
  c.f_hedge_wins <- c.f_hedge_wins + 1;
  t.total_fleet_hedges_won <- t.total_fleet_hedges_won + 1

let alert (t : t) ~(slo : string) : unit =
  t.total_alerts <- t.total_alerts + 1;
  Hashtbl.replace t.alerts_by_slo slo
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.alerts_by_slo slo))

let incident (t : t) ~(kind : string) : unit =
  t.total_incidents <- t.total_incidents + 1;
  Hashtbl.replace t.incidents_by_kind kind
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.incidents_by_kind kind))

let kernel (t : t) ~(arch : string) ~(version : string)
    (totals : Gpusim.Events.totals) : unit =
  let key = (arch, version) in
  match Hashtbl.find_opt t.kernels key with
  | Some cell ->
      cell.k_requests <- cell.k_requests + 1;
      cell.k_totals <- Gpusim.Events.add_totals cell.k_totals totals
  | None ->
      Hashtbl.add t.kernels key { k_requests = 1; k_totals = totals }

let hits t = t.total_hits
let misses t = t.total_misses
let evictions t = t.total_evictions
let batches t = t.total_batches
let coalesced t = t.total_coalesced
let retries t = t.total_retries
let faults t = t.total_faults
let quarantines t = t.total_quarantines
let fallbacks t = t.total_fallbacks
let degraded t = t.total_degraded
let bad_requests t = t.total_bad_requests
let backoff_total_us t = t.backoff_total_us
let sdc_checks t = t.total_sdc_checks
let sdc_catches t = t.total_sdc_catches
let sdc_false_alarms t = t.total_sdc_false_alarms
let sdc_reexecs t = t.total_sdc_reexecs
let admitted t = t.total_admitted_interactive + t.total_admitted_batch
let admitted_interactive t = t.total_admitted_interactive
let admitted_batch t = t.total_admitted_batch
let sheds t = t.total_shed_interactive + t.total_shed_batch
let sheds_interactive t = t.total_shed_interactive
let sheds_batch t = t.total_shed_batch
let deadline_expiries t = t.total_deadline_expiries
let deadline_witness_serves t = t.total_deadline_witness_serves
let brownout_transitions t = t.total_brownout_transitions
let brownout_max_level t = t.brownout_max

let brownout_sheds (t : t) : (string * int) list =
  Hashtbl.fold (fun w n acc -> (w, n) :: acc) t.brownout_shed_work []
  |> List.sort compare

let fleet_dispatches t = t.total_fleet_dispatches
let fleet_reroutes t = t.total_fleet_reroutes
let fleet_hedges_fired t = t.total_fleet_hedges_fired
let fleet_hedges_won t = t.total_fleet_hedges_won
let fleet_ejects t = t.total_fleet_ejects
let fleet_readmits t = t.total_fleet_readmits
let fleet_deaths t = t.total_fleet_deaths
let fleet_drains t = t.total_fleet_drains
let fleet_promotions t = t.total_fleet_promotions

let fleet_rows (t : t) : (string * fleet_row) list =
  Hashtbl.fold
    (fun device c acc ->
      ( device,
        {
          fd_dispatches = c.f_dispatches;
          fd_hedge_wins = c.f_hedge_wins;
          fd_ejects = c.f_ejects;
          fd_readmits = c.f_readmits;
          fd_health = c.f_health;
          fd_state = c.f_state;
        } )
      :: acc)
    t.fleet_devices []
  |> List.sort compare

(* the gate of the report's fleet section: any fleet traffic or
   lifecycle event — a service with no fleet attached never records
   either, so its report is byte-identical to the fleet-less one *)
let fleet_fired (t : t) : bool =
  t.total_fleet_dispatches + t.total_fleet_reroutes
  + t.total_fleet_hedges_fired + t.total_fleet_ejects
  + t.total_fleet_readmits + t.total_fleet_deaths + t.total_fleet_drains
  + t.total_fleet_promotions
  > 0
  || Hashtbl.length t.fleet_devices > 0

let alerts t = t.total_alerts
let incidents t = t.total_incidents

let alert_rows (t : t) : (string * int) list =
  Hashtbl.fold (fun s n acc -> (s, n) :: acc) t.alerts_by_slo []
  |> List.sort compare

let incident_rows (t : t) : (string * int) list =
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) t.incidents_by_kind []
  |> List.sort compare

(* the gate of the report's monitoring section: an attached-but-quiet
   monitor records nothing here, so its report stays byte-identical *)
let monitoring_fired (t : t) : bool =
  t.total_alerts + t.total_incidents > 0

(* the gate of the report's overload section: admission alone (requests
   flowing through the queue at zero load) is not an overload event *)
let overload_fired (t : t) : bool =
  t.total_shed_interactive + t.total_shed_batch + t.total_deadline_expiries
  + t.total_deadline_witness_serves + t.total_brownout_transitions
  > 0

let fault_histogram (t : t) : (string * int) list =
  Hashtbl.fold (fun v n acc -> (v, n) :: acc) t.version_faults []
  |> List.sort (fun (va, a) (vb, b) -> compare (b, va) (a, vb))

let bucket_counts (t : t) : (string * (int * int)) list =
  Hashtbl.fold (fun b c acc -> (b, (c.c_hits, c.c_misses)) :: acc) t.buckets []
  |> List.sort compare

let winner_histogram (t : t) : (string * int) list =
  Hashtbl.fold (fun v n acc -> (v, n) :: acc) t.winners []
  |> List.sort (fun (va, a) (vb, b) -> compare (b, va) (a, vb))

let plan_series t = summarize t.plan
let tune_series t = summarize t.tune
let run_series t = summarize t.run
let verify_series t = summarize t.verify
let queue_wait_series t = summarize t.queue_wait

(** Aggregated kernel counters as ((arch, version), (requests, totals)),
    sorted by (arch, version). *)
let kernel_rows (t : t) :
    ((string * string) * (int * Gpusim.Events.totals)) list =
  Hashtbl.fold
    (fun key cell acc -> (key, (cell.k_requests, cell.k_totals)) :: acc)
    t.kernels []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let report (t : t) : string =
  let b = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "=== service metrics ===\n";
  let lookups = t.total_hits + t.total_misses in
  pr "cache: %d lookups, %d hits, %d misses (%.1f%% hit rate), %d evictions\n"
    lookups t.total_hits t.total_misses
    (if lookups = 0 then 0.0
     else 100.0 *. float_of_int t.total_hits /. float_of_int lookups)
    t.total_evictions;
  if t.total_batches > 0 then
    pr "batching: %d batches dispatched, %d requests coalesced\n" t.total_batches
      t.total_coalesced;
  pr "\nper-bucket lookups (hits/misses):\n";
  List.iter
    (fun (bucket, (h, m)) -> pr "  %-40s %6d / %d\n" bucket h m)
    (bucket_counts t);
  (* a bucket with no samples renders "-", not a misleading 0.0 *)
  let series name (s : series) =
    if s.count > 0 then
      pr "  %-6s %6d samples   p50 %10.1f us   p95 %10.1f us   max %10.1f us\n"
        name s.count s.p50 s.p95 s.max
    else
      pr "  %-6s %6d samples   p50 %10s us   p95 %10s us   max %10s us\n" name 0
        "-" "-" "-"
  in
  pr "\nlatencies (host wall clock):\n";
  series "plan" (plan_series t);
  series "tune" (tune_series t);
  series "run" (run_series t);
  pr "\nwinning versions (requests served):\n";
  List.iter (fun (v, n) -> pr "  %-34s %6d\n" v n) (winner_histogram t);
  (* the fault-tolerance section appears only once something failed, so a
     fault-free service prints exactly the report it always did *)
  if
    t.total_faults + t.total_retries + t.total_quarantines + t.total_fallbacks
    + t.total_degraded + t.total_bad_requests
    > 0
  then begin
    pr "\nfault tolerance:\n";
    pr "  faults %d   retries %d   backoff (simulated) %.1f us\n" t.total_faults
      t.total_retries t.backoff_total_us;
    pr "  quarantine events %d   fallback serves %d   degraded serves %d   bad requests %d\n"
      t.total_quarantines t.total_fallbacks t.total_degraded
      t.total_bad_requests;
    match fault_histogram t with
    | [] -> ()
    | hist ->
        pr "  faults by version:\n";
        List.iter (fun (v, n) -> pr "    %-32s %6d\n" v n) hist
  end;
  (* like the fault section, the guard section appears only once a check
     actually tripped (catch, false alarm or re-execution) — a clean run
     prints exactly the report it always did, even with the guard on *)
  if t.total_sdc_catches + t.total_sdc_false_alarms + t.total_sdc_reexecs > 0
  then begin
    pr "\nsilent-data-corruption guard:\n";
    pr "  checks %d   caught %d   re-executions %d   false alarms %d (%.2f%% of checks)\n"
      t.total_sdc_checks t.total_sdc_catches t.total_sdc_reexecs
      t.total_sdc_false_alarms
      (if t.total_sdc_checks = 0 then 0.0
       else
         100.0
         *. float_of_int t.total_sdc_false_alarms
         /. float_of_int t.total_sdc_checks);
    let v = summarize t.verify in
    if v.count > 0 then
      pr "  verify overhead: p50 %.1f us   p95 %.1f us   max %.1f us\n" v.p50
        v.p95 v.max
  end;
  (* the overload section appears only once the admission layer shed,
     expired or browned-out something: a replay through the admission
     queue at zero load (no overload machinery firing) prints exactly
     the report it always did *)
  if overload_fired t then begin
    pr "\noverload resilience:\n";
    pr "  admitted %d (interactive %d, batch %d)   shed %d (interactive %d, batch %d)\n"
      (admitted t) t.total_admitted_interactive t.total_admitted_batch (sheds t)
      t.total_shed_interactive t.total_shed_batch;
    pr "  deadline expiries %d   degraded witness serves %d\n"
      t.total_deadline_expiries t.total_deadline_witness_serves;
    pr "  brownout transitions %d   max level %d\n" t.total_brownout_transitions
      t.brownout_max;
    (match brownout_sheds t with
    | [] -> ()
    | sheds ->
        pr "  work shed under brownout:\n";
        List.iter (fun (w, n) -> pr "    %-32s %6d\n" w n) sheds);
    let q = summarize t.queue_wait in
    if q.count > 0 then
      pr "  queue wait (virtual): p50 %.1f us   p95 %.1f us   max %.1f us\n"
        q.p50 q.p95 q.max
  end;
  (* the fleet section appears only once a fleet routed, hedged or
     transitioned something — a fleet-less service prints exactly the
     report it always did *)
  if fleet_fired t then begin
    pr "\ndevice fleet:\n";
    pr "  dispatches %d   rerouted off dying devices %d   hedges fired %d / won %d\n"
      t.total_fleet_dispatches t.total_fleet_reroutes
      t.total_fleet_hedges_fired t.total_fleet_hedges_won;
    pr "  ejections %d   readmissions %d   dead %d   drains %d   spare promotions %d\n"
      t.total_fleet_ejects t.total_fleet_readmits t.total_fleet_deaths
      t.total_fleet_drains t.total_fleet_promotions;
    match fleet_rows t with
    | [] -> ()
    | rows ->
        pr "  per-device:\n";
        List.iter
          (fun (device, r) ->
            pr "    %-24s %-8s dispatches %6d   hedge wins %4d   health %.2f\n"
              device r.fd_state r.fd_dispatches r.fd_hedge_wins r.fd_health)
          rows
  end;
  (* the monitoring section appears only once an SLO alert fired or the
     flight recorder dumped — an attached-but-healthy monitor prints
     exactly the report it always did *)
  if monitoring_fired t then begin
    pr "\nmonitoring:\n";
    pr "  slo alerts %d   incident bundles %d\n" t.total_alerts
      t.total_incidents;
    (match alert_rows t with
    | [] -> ()
    | rows ->
        pr "  alerts by slo:\n";
        List.iter (fun (s, n) -> pr "    %-32s %6d\n" s n) rows);
    match incident_rows t with
    | [] -> ()
    | rows ->
        pr "  incidents by trigger:\n";
        List.iter (fun (k, n) -> pr "    %-32s %6d\n" k n) rows
  end;
  (* the profiler section appears only when the service aggregated kernel
     counters (profiling is off by default), keeping the default report
     byte-identical *)
  (match kernel_rows t with
  | [] -> ()
  | rows ->
      pr "\nkernel counters (per arch, version):\n";
      pr "  %-10s %-26s %8s %12s %10s %12s %12s %10s %14s\n" "arch" "version"
        "requests" "warp insts" "shfl" "shared ser" "glb atomics" "max heat"
        "dram bytes";
      List.iter
        (fun ((arch, version), (requests, tot)) ->
          pr "  %-10s %-26s %8d %12.0f %10.0f %12.0f %12.0f %10.0f %14.0f\n"
            arch version requests tot.Gpusim.Events.t_warp_insts
            tot.Gpusim.Events.t_shfl_insts tot.Gpusim.Events.t_shared_serial
            tot.Gpusim.Events.t_atomic_global_ops tot.Gpusim.Events.t_max_heat
            tot.Gpusim.Events.t_bytes_dram)
        rows);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Machine-readable twins of the report                                *)
(* ------------------------------------------------------------------ *)

module J = Obs.Json

let series_json (s : series) : J.t =
  J.Obj
    [
      ("count", J.Num (float_of_int s.count));
      ("mean", J.Num s.mean);
      ("p50", J.Num s.p50);
      ("p95", J.Num s.p95);
      ("max", J.Num s.max);
    ]

(** One JSON object mirroring {!report}, with a stable key order —
    emitting it twice from the same stats yields identical strings. *)
let to_json (t : t) : string =
  let int n = J.Num (float_of_int n) in
  J.to_string
    (J.Obj
       [
         ( "cache",
           J.Obj
             [
               ("lookups", int (t.total_hits + t.total_misses));
               ("hits", int t.total_hits);
               ("misses", int t.total_misses);
               ("evictions", int t.total_evictions);
             ] );
         ( "batching",
           J.Obj
             [
               ("batches", int t.total_batches);
               ("coalesced", int t.total_coalesced);
             ] );
         ( "buckets",
           J.Arr
             (List.map
                (fun (bucket, (h, m)) ->
                  J.Obj
                    [
                      ("bucket", J.Str bucket); ("hits", int h); ("misses", int m);
                    ])
                (bucket_counts t)) );
         ( "latencies_us",
           J.Obj
             [
               ("plan", series_json (plan_series t));
               ("tune", series_json (tune_series t));
               ("run", series_json (run_series t));
               ("verify", series_json (verify_series t));
             ] );
         ( "winners",
           J.Arr
             (List.map
                (fun (v, n) -> J.Obj [ ("version", J.Str v); ("served", int n) ])
                (winner_histogram t)) );
         ( "fault_tolerance",
           J.Obj
             [
               ("faults", int t.total_faults);
               ("retries", int t.total_retries);
               ("backoff_us", J.Num t.backoff_total_us);
               ("quarantines", int t.total_quarantines);
               ("fallbacks", int t.total_fallbacks);
               ("degraded", int t.total_degraded);
               ("bad_requests", int t.total_bad_requests);
               ( "by_version",
                 J.Arr
                   (List.map
                      (fun (v, n) ->
                        J.Obj [ ("version", J.Str v); ("faults", int n) ])
                      (fault_histogram t)) );
             ] );
         ( "sdc",
           J.Obj
             [
               ("checks", int t.total_sdc_checks);
               ("catches", int t.total_sdc_catches);
               ("reexecs", int t.total_sdc_reexecs);
               ("false_alarms", int t.total_sdc_false_alarms);
             ] );
         ( "overload",
           J.Obj
             [
               ("admitted_interactive", int t.total_admitted_interactive);
               ("admitted_batch", int t.total_admitted_batch);
               ("shed_interactive", int t.total_shed_interactive);
               ("shed_batch", int t.total_shed_batch);
               ("deadline_expiries", int t.total_deadline_expiries);
               ( "deadline_witness_serves",
                 int t.total_deadline_witness_serves );
               ("brownout_transitions", int t.total_brownout_transitions);
               ("brownout_max_level", int t.brownout_max);
               ( "brownout_sheds",
                 J.Arr
                   (List.map
                      (fun (w, n) ->
                        J.Obj [ ("work", J.Str w); ("shed", int n) ])
                      (brownout_sheds t)) );
               ("queue_wait_us", series_json (queue_wait_series t));
             ] );
         ( "fleet",
           J.Obj
             [
               ("dispatches", int t.total_fleet_dispatches);
               ("reroutes", int t.total_fleet_reroutes);
               ("hedges_fired", int t.total_fleet_hedges_fired);
               ("hedges_won", int t.total_fleet_hedges_won);
               ("ejections", int t.total_fleet_ejects);
               ("readmissions", int t.total_fleet_readmits);
               ("dead", int t.total_fleet_deaths);
               ("drains", int t.total_fleet_drains);
               ("promotions", int t.total_fleet_promotions);
               ( "devices",
                 J.Arr
                   (List.map
                      (fun (device, r) ->
                        J.Obj
                          [
                            ("device", J.Str device);
                            ("state", J.Str r.fd_state);
                            ("dispatches", int r.fd_dispatches);
                            ("hedge_wins", int r.fd_hedge_wins);
                            ("ejections", int r.fd_ejects);
                            ("readmissions", int r.fd_readmits);
                            ("health", J.Num r.fd_health);
                          ])
                      (fleet_rows t)) );
             ] );
         ( "monitoring",
           J.Obj
             [
               ("alerts", int t.total_alerts);
               ("incidents", int t.total_incidents);
               ( "by_slo",
                 J.Arr
                   (List.map
                      (fun (s, n) ->
                        J.Obj [ ("slo", J.Str s); ("alerts", int n) ])
                      (alert_rows t)) );
               ( "by_trigger",
                 J.Arr
                   (List.map
                      (fun (k, n) ->
                        J.Obj [ ("trigger", J.Str k); ("incidents", int n) ])
                      (incident_rows t)) );
             ] );
         ( "kernels",
           J.Arr
             (List.map
                (fun ((arch, version), (requests, tot)) ->
                  J.Obj
                    (("arch", J.Str arch) :: ("version", J.Str version)
                    :: ("requests", int requests)
                    :: List.map
                         (fun (k, v) -> (k, J.Num v))
                         (Gpusim.Events.totals_fields tot)))
                (kernel_rows t)) );
       ])

(* Prometheus text exposition. Counter families end in _total; the
   latency series render as summaries (quantile labels + _sum/_count).
   Label values escape backslash, quote and newline per the format. *)
let prom_escape (s : string) : string =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_prometheus ?(metrics : Obs.Metrics.t option) (t : t) : string =
  let b = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let number = J.number_to_string in
  let counter name ?(labels = []) (v : float) =
    match labels with
    | [] -> pr "%s %s\n" name (number v)
    | labels ->
        pr "%s{%s} %s\n" name
          (String.concat ","
             (List.map
                (fun (k, value) -> Printf.sprintf "%s=\"%s\"" k (prom_escape value))
                labels))
          (number v)
  in
  let typ name kind = pr "# TYPE %s %s\n" name kind in
  let i = float_of_int in
  typ "tangram_cache_hits_total" "counter";
  counter "tangram_cache_hits_total" (i t.total_hits);
  typ "tangram_cache_misses_total" "counter";
  counter "tangram_cache_misses_total" (i t.total_misses);
  typ "tangram_cache_evictions_total" "counter";
  counter "tangram_cache_evictions_total" (i t.total_evictions);
  typ "tangram_batches_total" "counter";
  counter "tangram_batches_total" (i t.total_batches);
  typ "tangram_coalesced_requests_total" "counter";
  counter "tangram_coalesced_requests_total" (i t.total_coalesced);
  typ "tangram_retries_total" "counter";
  counter "tangram_retries_total" (i t.total_retries);
  typ "tangram_faults_total" "counter";
  counter "tangram_faults_total" (i t.total_faults);
  typ "tangram_quarantines_total" "counter";
  counter "tangram_quarantines_total" (i t.total_quarantines);
  typ "tangram_fallback_serves_total" "counter";
  counter "tangram_fallback_serves_total" (i t.total_fallbacks);
  typ "tangram_degraded_serves_total" "counter";
  counter "tangram_degraded_serves_total" (i t.total_degraded);
  typ "tangram_bad_requests_total" "counter";
  counter "tangram_bad_requests_total" (i t.total_bad_requests);
  typ "tangram_backoff_simulated_us_total" "counter";
  counter "tangram_backoff_simulated_us_total" t.backoff_total_us;
  typ "tangram_sdc_checks_total" "counter";
  counter "tangram_sdc_checks_total" (i t.total_sdc_checks);
  typ "tangram_sdc_catches_total" "counter";
  counter "tangram_sdc_catches_total" (i t.total_sdc_catches);
  typ "tangram_sdc_reexecs_total" "counter";
  counter "tangram_sdc_reexecs_total" (i t.total_sdc_reexecs);
  typ "tangram_sdc_false_alarms_total" "counter";
  counter "tangram_sdc_false_alarms_total" (i t.total_sdc_false_alarms);
  typ "tangram_admitted_total" "counter";
  counter "tangram_admitted_total"
    ~labels:[ ("class", "interactive") ]
    (i t.total_admitted_interactive);
  counter "tangram_admitted_total"
    ~labels:[ ("class", "batch") ]
    (i t.total_admitted_batch);
  typ "tangram_shed_total" "counter";
  counter "tangram_shed_total"
    ~labels:[ ("class", "interactive") ]
    (i t.total_shed_interactive);
  counter "tangram_shed_total"
    ~labels:[ ("class", "batch") ]
    (i t.total_shed_batch);
  typ "tangram_deadline_expiries_total" "counter";
  counter "tangram_deadline_expiries_total" (i t.total_deadline_expiries);
  typ "tangram_deadline_witness_serves_total" "counter";
  counter "tangram_deadline_witness_serves_total"
    (i t.total_deadline_witness_serves);
  typ "tangram_brownout_transitions_total" "counter";
  counter "tangram_brownout_transitions_total" (i t.total_brownout_transitions);
  typ "tangram_brownout_max_level" "gauge";
  counter "tangram_brownout_max_level" (i t.brownout_max);
  (match brownout_sheds t with
  | [] -> ()
  | sheds ->
      typ "tangram_brownout_shed_total" "counter";
      List.iter
        (fun (w, n) ->
          counter "tangram_brownout_shed_total" ~labels:[ ("work", w) ] (i n))
        sheds);
  (match bucket_counts t with
  | [] -> ()
  | buckets ->
      typ "tangram_bucket_lookups_total" "counter";
      List.iter
        (fun (bucket, (h, m)) ->
          counter "tangram_bucket_lookups_total"
            ~labels:[ ("bucket", bucket); ("result", "hit") ]
            (i h);
          counter "tangram_bucket_lookups_total"
            ~labels:[ ("bucket", bucket); ("result", "miss") ]
            (i m))
        buckets);
  (match winner_histogram t with
  | [] -> ()
  | winners ->
      typ "tangram_requests_served_total" "counter";
      List.iter
        (fun (v, n) ->
          counter "tangram_requests_served_total"
            ~labels:[ ("version", v) ]
            (i n))
        winners);
  (match fault_histogram t with
  | [] -> ()
  | hist ->
      typ "tangram_version_faults_total" "counter";
      List.iter
        (fun (v, n) ->
          counter "tangram_version_faults_total" ~labels:[ ("version", v) ] (i n))
        hist);
  typ "tangram_latency_us" "summary";
  List.iter
    (fun (stage, s) ->
      counter "tangram_latency_us"
        ~labels:[ ("stage", stage); ("quantile", "0.5") ]
        s.p50;
      counter "tangram_latency_us"
        ~labels:[ ("stage", stage); ("quantile", "0.95") ]
        s.p95;
      counter "tangram_latency_us_sum"
        ~labels:[ ("stage", stage) ]
        (s.mean *. i s.count);
      counter "tangram_latency_us_count" ~labels:[ ("stage", stage) ] (i s.count))
    [
      ("plan", plan_series t);
      ("tune", tune_series t);
      ("run", run_series t);
      ("verify", verify_series t);
      ("queue_wait", queue_wait_series t);
    ];
  (* fleet families render only once a fleet fired, mirroring the text
     report's gate *)
  if fleet_fired t then begin
    typ "tangram_fleet_dispatches_total" "counter";
    counter "tangram_fleet_dispatches_total" (i t.total_fleet_dispatches);
    typ "tangram_fleet_reroutes_total" "counter";
    counter "tangram_fleet_reroutes_total" (i t.total_fleet_reroutes);
    typ "tangram_fleet_hedges_total" "counter";
    counter "tangram_fleet_hedges_total"
      ~labels:[ ("outcome", "fired") ]
      (i t.total_fleet_hedges_fired);
    counter "tangram_fleet_hedges_total"
      ~labels:[ ("outcome", "won") ]
      (i t.total_fleet_hedges_won);
    typ "tangram_fleet_ejections_total" "counter";
    counter "tangram_fleet_ejections_total" (i t.total_fleet_ejects);
    typ "tangram_fleet_readmissions_total" "counter";
    counter "tangram_fleet_readmissions_total" (i t.total_fleet_readmits);
    typ "tangram_fleet_dead_total" "counter";
    counter "tangram_fleet_dead_total" (i t.total_fleet_deaths);
    typ "tangram_fleet_drains_total" "counter";
    counter "tangram_fleet_drains_total" (i t.total_fleet_drains);
    typ "tangram_fleet_promotions_total" "counter";
    counter "tangram_fleet_promotions_total" (i t.total_fleet_promotions);
    match fleet_rows t with
    | [] -> ()
    | rows ->
        typ "tangram_fleet_device_dispatches_total" "counter";
        List.iter
          (fun (device, r) ->
            counter "tangram_fleet_device_dispatches_total"
              ~labels:[ ("device", device) ]
              (i r.fd_dispatches))
          rows;
        typ "tangram_fleet_device_health" "gauge";
        List.iter
          (fun (device, r) ->
            counter "tangram_fleet_device_health"
              ~labels:[ ("device", device); ("state", r.fd_state) ]
              r.fd_health)
          rows
  end;
  (match kernel_rows t with
  | [] -> ()
  | rows ->
      typ "tangram_kernel_requests_total" "counter";
      List.iter
        (fun ((arch, version), (requests, _)) ->
          counter "tangram_kernel_requests_total"
            ~labels:[ ("arch", arch); ("version", version) ]
            (i requests))
        rows;
      typ "tangram_kernel_counter_total" "counter";
      List.iter
        (fun ((arch, version), (_, tot)) ->
          List.iter
            (fun (name, v) ->
              counter "tangram_kernel_counter_total"
                ~labels:[ ("arch", arch); ("version", version); ("counter", name) ]
                v)
            (Gpusim.Events.totals_fields tot))
        rows);
  (* monitoring families render only once an alert or incident fired,
     mirroring the text report's gate *)
  if monitoring_fired t then begin
    typ "tangram_slo_alerts_total" "counter";
    counter "tangram_slo_alerts_total" (i t.total_alerts);
    List.iter
      (fun (s, n) ->
        counter "tangram_slo_alerts_total" ~labels:[ ("slo", s) ] (i n))
      (alert_rows t);
    typ "tangram_incidents_total" "counter";
    counter "tangram_incidents_total" (i t.total_incidents);
    List.iter
      (fun (k, n) ->
        counter "tangram_incidents_total" ~labels:[ ("trigger", k) ] (i n))
      (incident_rows t)
  end;
  (* the monitor's windowed time-series document rides at the end: the
     instrument families carry their own HELP/TYPE headers *)
  (match metrics with
  | Some m -> Buffer.add_string b (Obs.Metrics.to_prometheus m)
  | None -> ());
  Buffer.contents b
