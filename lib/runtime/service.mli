(** The request engine: a long-lived reduction service in front of the
    planner/tuner/simulator stack.

    [submit_result] dispatches one reduction request through the
    {!Plan_cache}: a hit runs the cached winner immediately; a miss plans
    and tunes the request's (architecture, operation, element,
    size-bucket) key once — every pruned candidate version is swept at
    the bucket's representative size and ranked fastest-first — then
    populates the cache and runs. [submit_batch_result] additionally
    coalesces same-shape requests (equal architecture and input) into a
    single simulation.

    The service is fault tolerant. Transient simulator errors are
    retried under bounded exponential backoff with jitter (charged to
    simulated time). Versions that keep faulting trip a per-(architecture,
    version) circuit breaker and are quarantined for a cooldown; the
    bucket's next-fastest ranked version serves meanwhile (the fallback
    ladder reuses the cold-path ranking — no re-tuning under fire). When
    every rung is quarantined or faulting, the service degrades to the
    planner's host-side reference and flags the response
    [resp_degraded] rather than failing.

    The service also defends against silent data corruption. Every
    exact response is checked against a {!Guard} witness under the
    {!Tolerance} model before it is returned; a rejected result is
    re-executed on its own rung (dual-modular) and, if the corruption
    is confirmed, voted out down the fallback ladder — confirmed
    corruptions charge the version's circuit breaker like loud faults.
    An out-of-tolerance answer is never returned: when no execution is
    acceptable the witness value itself serves (degraded), or the
    request fails with [Sdc] when degraded mode is off.

    Under overload the service stays predictable rather than fast.
    [submit ?deadline_us] gives a request a budget in {e simulated}
    microseconds (kernel time, retry backoff and redundant executions
    all charge it — deterministic under replay); the budget is checked
    before each new piece of work, so an answer already computed is
    never thrown away, and a budget that dies with the witness in hand
    serves the witness value degraded instead of erroring. Deadline
    expiry is never charged to any circuit breaker. Orthogonally, the
    brownout ladder ({!set_brownout}) sheds optional work step by step:
    level 1 drops kernel profiling, level 2 drops redundant re-execution
    (a rejected result serves the witness value), level 3 drops witness
    sampling density to 1, and level 4 answers every request from the
    host reference without touching the device path at all. The
    {!Admission} layer drives both knobs from queue depth and observed
    latency. *)

type request = {
  req_arch : Gpusim.Arch.t;
  req_input : Gpusim.Runner.input;
}

type response = {
  resp_value : float;  (** the reduced value *)
  resp_exact : bool;  (** whether [resp_value] is trustworthy (no sampling) *)
  resp_sim_us : float;
      (** simulated GPU wall clock, including any retry backoff *)
  resp_version : Synthesis.Version.t;
      (** version that served the request. When [resp_degraded] is set
          the value came from the host reference, not from any version:
          this field then records the last-attempted rung (the one the
          degraded path gave up on), and [resp_exact] describes the
          host recomputation. The winner stat names the real server
          (["host-reference (degraded)"] / ["host-reference (sdc)"] /
          ["host-reference (deadline)"] / ["host-reference (brownout)"]). *)
  resp_tunables : (string * int) list;
  resp_hit : bool;  (** plan-cache hit? *)
  resp_bucket : int;  (** size bucket the request dispatched to *)
  resp_service_us : float;  (** host-side service latency *)
  resp_degraded : bool;
      (** served by the host-reference degraded path (every version of
          the bucket was quarantined or faulting) *)
  resp_retries : int;  (** transient-fault retries spent on this request *)
  resp_fallback : int;
      (** how many ladder rungs were skipped before the serving one
          (0 = the bucket winner served) *)
}

(** Why a request failed. [Transient] and [Version_fault] only escape
    when degraded mode is disabled; [Cache_corrupt] only from
    {!load_cache}. *)
type error =
  | Bad_request of string  (** malformed input; never retried *)
  | Transient of string  (** retries exhausted on a transient fault *)
  | Version_fault of string
      (** a hard version failure (timeout, corrupted result, no
          surviving candidate) *)
  | Cache_corrupt of string  (** a persisted plan cache failed to parse *)
  | Sdc of string
      (** a result failed witness verification and no redundant execution
          produced an acceptable answer (only with degraded mode off) *)
  | Deadline_exceeded of string
      (** the request's [deadline_us] budget died before any answer was
          in hand. Never charged to a circuit breaker: the version did
          nothing wrong, the client stopped waiting *)

exception Service_error of error

val error_message : error -> string

(** Retry, quarantine and degradation policy. *)
type resilience = {
  r_retry_max : int;  (** transient retries per rung (default 3) *)
  r_backoff_base_us : float;  (** first backoff delay (default 50us) *)
  r_backoff_mult : float;  (** exponential multiplier (default 2) *)
  r_backoff_max_us : float;  (** backoff cap (default 5000us) *)
  r_jitter : float;  (** +/- fraction of jitter on each delay (default 0.25) *)
  r_quarantine_threshold : int;
      (** faults before a version's breaker opens (default 3) *)
  r_cooldown_requests : int;
      (** service ticks an open breaker waits before half-opening for a
          probe (default 64) *)
  r_allow_degraded : bool;
      (** serve host-reference answers when every rung is down (default
          [true]); when [false] such requests return [Error] *)
}

val default_resilience : resilience

type t

(** [create planner] builds a cold service.
    [capacity] bounds the plan cache (LRU, default
    {!Plan_cache.default_capacity}); [cache] starts from a warmed cache
    instead (e.g. {!Plan_cache.load}ed — [capacity] is then ignored);
    [candidates] restricts the versions considered on a cache miss
    (default: the 30 pruned survivors); dense inputs up to
    [exact_threshold] elements (default [2^17]) run in exact mode, larger
    or synthetic inputs in fast sampled mode. [resilience] sets the
    retry/quarantine policy, [guard] the silent-data-corruption
    verification policy (default {!Guard.default}: every exact response
    witness-checked), [fault] arms a {!Gpusim.Fault} injection plan
    (default none), and [jitter_seed] seeds the reproducible
    backoff-jitter stream. *)
val create :
  ?capacity:int ->
  ?cache:Plan_cache.t ->
  ?candidates:Synthesis.Version.t list ->
  ?exact_threshold:int ->
  ?resilience:resilience ->
  ?guard:Guard.config ->
  ?fault:Gpusim.Fault.t ->
  ?jitter_seed:int ->
  Synthesis.Planner.t ->
  t

val planner : t -> Synthesis.Planner.t
val cache : t -> Plan_cache.t
val stats : t -> Stats.t

(** The active silent-data-corruption verification policy. *)
val guard : t -> Guard.config

(** The armed fault-injection plan, if any. *)
val fault : t -> Gpusim.Fault.t option

(** Arm ([Some]) or disarm ([None]) fault injection on a live service. *)
val set_fault : t -> Gpusim.Fault.t option -> unit

(** Is per-request kernel profiling on? Off by default. *)
val profiling : t -> bool

(** Toggle kernel profiling: when on, every served outcome's simulator
    launch counters aggregate into [Stats] per (arch, version) (see
    [Stats.kernel_rows]); when off (the default) nothing is recorded and
    the text report is unchanged. *)
val set_profiling : t -> bool -> unit

(** The attached device fleet, if any. *)
val fleet : t -> Fleet.t option

(** Route every subsequent request through [fleet]: the router picks a
    device (health-aware, least-loaded), the request executes against
    that device's architecture with its private fault stream and
    fail-slow profile, and hedged execution re-dispatches stragglers.
    Also points the fleet at this service's {!Stats} so the report grows
    its fleet section. A service with no fleet attached is byte-identical
    to one predating fleets. *)
val attach_fleet : t -> Fleet.t -> unit

(** Return to the single-device path. *)
val detach_fleet : t -> unit

(** {1 Monitoring: windowed metrics, SLO burn rates, flight recorder}

    An attached monitor drives three layers off a serialized virtual
    clock (advanced by each request's observed virtual latency):
    windowed {!Obs.Metrics} instruments, multi-window burn-rate SLOs
    ({!Obs.Slo}) and the black-box {!Recorder}. When an SLO alert
    fires, a corruption is confirmed or a device is ejected, the
    recorder freezes the last requests plus the SLO/fleet/metric
    context into a self-contained incident bundle. A service without a
    monitor behaves — and reports — exactly as before. *)

(** Attach a fresh monitor. [latency_mult] bounds the latency SLO's
    good region (observed <= mult x static-cost prediction, default 3);
    inputs at or below [interactive_max] (default 65536) feed the
    latency SLO; metrics snapshot every [snapshot_every] requests
    (default 32); the recorder ring holds [capacity] requests
    (default 128). [latency_target] (default 0.97) and
    [goodput_target] (default 0.95) set the SLO targets — the SDC
    objective is always zero-budget. *)
val attach_monitor :
  ?latency_mult:float ->
  ?interactive_max:int ->
  ?snapshot_every:int ->
  ?capacity:int ->
  ?latency_target:float ->
  ?goodput_target:float ->
  t ->
  unit

val detach_monitor : t -> unit
val monitor_attached : t -> bool

(** The monitor's metrics registry, e.g. for
    [Stats.to_prometheus ?metrics]. *)
val monitor_metrics : t -> Obs.Metrics.t option

val monitor_recorder : t -> Recorder.t option

(** The monitor's SLOs as (name, state) rows — empty without a
    monitor. *)
val monitor_slos : t -> (string * Obs.Slo.t) list

(** The monitor's virtual clock (0 without a monitor). *)
val monitor_now_us : t -> float

(** Force a metrics-window boundary at the current virtual time (the
    replay drivers call this once at the end of a run). *)
val monitor_snapshot : t -> unit

(** {2 Admission feeds} — the queue lives above the service, but the
    monitor owns the instruments; no-ops without a monitor. *)

val monitor_queue_depth : t -> int -> unit
val monitor_queue_wait : t -> float -> unit
val monitor_shed : t -> unit

(** The deepest brownout ladder step (4: host path only). *)
val max_brownout : int

(** The current brownout ladder position, 0 (full service) ..
    {!max_brownout}. *)
val brownout_level : t -> int

(** Move the brownout ladder to [level]:
    {ul
    {- [0] — full service.}
    {- [1] — shed kernel-counter profiling.}
    {- [2] — also shed redundant re-execution: a witness-rejected result
       serves the witness value (degraded) without re-running, and no
       corruption verdict is charged to any breaker.}
    {- [3] — also drop witness sampling density to 1.}
    {- [4] — serve every request from the host reference immediately,
       shedding the whole device path including cold planning/tuning.}}
    Each actual change is warn-logged and counted as a
    [Stats.brownout_transition]. Normally driven by the {!Admission}
    controller, but callable directly (e.g. from an operator CLI).
    @raise Invalid_argument when [level] is outside 0..{!max_brownout}. *)
val set_brownout : t -> int -> unit

(** Is (architecture, version) currently quarantined (breaker open and
    still cooling down)? *)
val quarantined : t -> arch:string -> version:string -> bool

(** Load a persisted plan cache, mapping parse/IO failures to
    [Error (Cache_corrupt _)] so callers can warn and start cold. *)
val load_cache : ?capacity:int -> string -> (Plan_cache.t, error) result

(** Serve one request. Empty inputs return the operation's identity
    without touching the simulator.

    [deadline_us] gives the request a budget in simulated microseconds
    (must be positive). Kernel time, retry backoff and redundant
    executions charge it; the check happens before each new piece of
    work, never after — an answer in hand is always served. A budget
    that dies with no answer returns [Error (Deadline_exceeded _)]; one
    that dies after the witness was computed serves the witness value,
    flagged [resp_degraded].
    @raise Invalid_argument when [deadline_us] is zero, negative or NaN. *)
val submit_result :
  ?deadline_us:float -> t -> request -> (response, error) result

(** [submit_result], raising {!Service_error} on failure. *)
val submit : ?deadline_us:float -> t -> request -> response

(** Serve a batch: requests with equal architecture and input share one
    cache lookup and one simulation; results come back in request
    order. [deadline_us] applies to each coalesced group
    independently. *)
val submit_batch_result :
  ?deadline_us:float -> t -> request list -> (response, error) result list

(** [submit_batch_result], raising {!Service_error} on the first
    failure. *)
val submit_batch : ?deadline_us:float -> t -> request list -> response list

(** The {!Stats.report} of this service. *)
val report : t -> string
