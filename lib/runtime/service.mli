(** The request engine: a long-lived reduction service in front of the
    planner/tuner/simulator stack.

    [submit] dispatches one reduction request through the {!Plan_cache}:
    a hit runs the cached winner immediately; a miss plans and tunes the
    request's (architecture, operation, element, size-bucket) key once —
    every pruned candidate version is swept at the bucket's
    representative size and the fastest wins — then populates the cache
    and runs. [submit_batch] additionally coalesces same-shape requests
    (equal architecture and input) into a single simulation. *)

type request = {
  req_arch : Gpusim.Arch.t;
  req_input : Gpusim.Runner.input;
}

type response = {
  resp_value : float;  (** the reduced value *)
  resp_exact : bool;  (** whether [resp_value] is trustworthy (no sampling) *)
  resp_sim_us : float;  (** simulated GPU wall clock *)
  resp_version : Synthesis.Version.t;  (** version that served the request *)
  resp_tunables : (string * int) list;
  resp_hit : bool;  (** plan-cache hit? *)
  resp_bucket : int;  (** size bucket the request dispatched to *)
  resp_service_us : float;  (** host-side service latency *)
}

type t

(** [create planner] builds a cold service.
    [capacity] bounds the plan cache (LRU, default
    {!Plan_cache.default_capacity}); [cache] starts from a warmed cache
    instead (e.g. {!Plan_cache.load}ed — [capacity] is then ignored);
    [candidates] restricts the versions considered on a cache miss
    (default: the 30 pruned survivors); dense inputs up to
    [exact_threshold] elements (default [2^17]) run in exact mode, larger
    or synthetic inputs in fast sampled mode. *)
val create :
  ?capacity:int ->
  ?cache:Plan_cache.t ->
  ?candidates:Synthesis.Version.t list ->
  ?exact_threshold:int ->
  Synthesis.Planner.t ->
  t

val planner : t -> Synthesis.Planner.t
val cache : t -> Plan_cache.t
val stats : t -> Stats.t

(** Serve one request. @raise Failure when no candidate version survives
    planning for the request's bucket. *)
val submit : t -> request -> response

(** Serve a batch: requests with equal architecture and input share one
    cache lookup and one simulation; responses come back in request
    order. *)
val submit_batch : t -> request list -> response list

(** The {!Stats.report} of this service. *)
val report : t -> string
