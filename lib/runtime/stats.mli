(** Service metrics: cache effectiveness, latency distributions and
    winning-version histograms, dumpable as a text report.

    All counters are in-memory and monotone; recording is O(1) amortized
    (latency samples append to growable buffers, percentiles are computed
    at report time). *)

type t

(** Summary of one latency series (microseconds, host-side wall clock). *)
type series = {
  count : int;
  mean : float;
  p50 : float;
  p95 : float;
  max : float;
}

val create : unit -> t

(** {1 Recording} *)

val hit : t -> bucket:string -> unit
val miss : t -> bucket:string -> unit
val eviction : t -> unit

(** Record that [version] served a request. *)
val winner : t -> string -> unit

val plan_us : t -> float -> unit
val tune_us : t -> float -> unit
val run_us : t -> float -> unit

(** Record one dispatched batch: its request count and how many requests
    were coalesced into another request's simulation. *)
val batch : t -> size:int -> coalesced:int -> unit

(** {1 Reading} *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int
val batches : t -> int
val coalesced : t -> int

(** Per-bucket (hits, misses), sorted by bucket label. *)
val bucket_counts : t -> (string * (int * int)) list

(** Serve counts per winning version, most-served first. *)
val winner_histogram : t -> (string * int) list

(** Empty series report as all-zero. *)
val plan_series : t -> series

val tune_series : t -> series
val run_series : t -> series

(** The text report printed by [reduce-explorer --service] and
    [tangramc serve]. *)
val report : t -> string
