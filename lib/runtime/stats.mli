(** Service metrics: cache effectiveness, latency distributions and
    winning-version histograms, dumpable as a text report.

    All counters are in-memory and monotone; recording is O(1) amortized
    (latency samples append to growable buffers, percentiles are computed
    at report time). *)

type t

(** Summary of one latency series (microseconds, host-side wall clock). *)
type series = {
  count : int;
  mean : float;
  p50 : float;
  p95 : float;
  max : float;
}

val create : unit -> t

(** {1 Recording} *)

val hit : t -> bucket:string -> unit
val miss : t -> bucket:string -> unit
val eviction : t -> unit

(** Record that [version] served a request. *)
val winner : t -> string -> unit

val plan_us : t -> float -> unit
val tune_us : t -> float -> unit
val run_us : t -> float -> unit

(** Record one dispatched batch: its request count and how many requests
    were coalesced into another request's simulation. *)
val batch : t -> size:int -> coalesced:int -> unit

(** {2 Failure recording} *)

(** One transient-fault retry. *)
val retry : t -> unit

(** One version fault (timeout, corrupted result, or exhausted transient
    retries), charged to [version]'s fault histogram. *)
val fault : t -> version:string -> unit

(** A circuit breaker opened (a version entered quarantine). *)
val quarantine : t -> unit

(** A request was served by a fallback rung instead of the bucket winner. *)
val fallback : t -> unit

(** A request was served by the degraded host-reference path. *)
val degrade : t -> unit

(** A request was rejected as malformed. *)
val bad_request : t -> unit

(** Simulated microseconds spent in retry backoff. *)
val backoff_us : t -> float -> unit

(** {2 Silent-data-corruption guard recording} *)

(** One witness check ran against an exact response. *)
val sdc_check : t -> unit

(** One result was confirmed as silent corruption and discarded. *)
val sdc_catch : t -> unit

(** One out-of-tolerance result reproduced deterministically: the alarm
    is charged to the tolerance model, not the version. *)
val sdc_false_alarm : t -> unit

(** One redundant (dual-modular / voting) re-execution ran. *)
val sdc_reexec : t -> unit

(** Host microseconds one witness check (plus any voting) cost. *)
val verify_us : t -> float -> unit

(** {2 Overload-resilience recording}

    Fed by {!Admission} (queueing, shedding) and by {!Service} deadline
    budgets. All of these stay zero on a service that never overloads,
    which is what keeps the text report byte-identical on the quiet
    path. *)

(** One request entered the admission queue. *)
val admit : t -> interactive:bool -> unit

(** One request was shed by the admission queue (bounded-queue overflow
    or expired-in-queue cleanup under a shed policy). *)
val shed_request : t -> interactive:bool -> unit

(** One request's deadline budget died (in queue, mid-retry or
    mid-verify) and it was answered with [Deadline_exceeded]. *)
val deadline_expire : t -> unit

(** One request's budget died after its witness was computed; the
    witness value served as the degraded answer instead of an error. *)
val deadline_witness_serve : t -> unit

(** The brownout controller moved to [level]. *)
val brownout_transition : t -> level:int -> unit

(** One unit of optional work was shed under brownout ([what] is the
    ladder step: ["profile"], ["reexec"], ["witness-sample"],
    ["host-path"]). *)
val brownout_shed : t -> what:string -> unit

(** Virtual microseconds one admitted request waited in the queue. *)
val queue_wait_us : t -> float -> unit

(** {2 Fleet recording}

    Fed by {!Fleet} through the service's fleet path. A service with no
    fleet attached records none of these, which is what keeps the
    fleet-less text report byte-identical. [device] is the fleet's
    stable device label (["d0:kepler-k40c"]). *)

(** One request (or hedge) dispatched to [device]. *)
val fleet_dispatch : t -> device:string -> unit

(** Latest health score of [device] (gauge, not a counter). *)
val fleet_health : t -> device:string -> float -> unit

(** Latest lifecycle state of [device] (gauge, not a counter). *)
val fleet_state : t -> device:string -> string -> unit

(** The health scorer ejected [device]. *)
val fleet_eject : t -> device:string -> unit

(** An ejected [device] passed its probes and was readmitted. *)
val fleet_readmit : t -> device:string -> unit

(** [device] fail-stopped and was marked dead. *)
val fleet_dead : t -> device:string -> unit

(** [device] was marked to drain. *)
val fleet_drain : t -> device:string -> unit

(** Warm spare [device] was promoted into the serving pool. *)
val fleet_promote : t -> device:string -> unit

(** One dispatch bounced off a dying device and was rerouted (the
    request was not lost). *)
val fleet_reroute : t -> unit

(** A first attempt overran the hedge deadline and a speculative
    re-dispatch fired. *)
val fleet_hedge_fired : t -> unit

(** The hedge finished first: [device] (the second device) won. *)
val fleet_hedge_won : t -> device:string -> unit

(** {2 Kernel profiling}

    Populated only when the service has profiling enabled
    ([Service.set_profiling]); the aggregation keys are (arch, version). *)

(** Fold one served outcome's launch-counter totals into the
    per-(arch, version) aggregate. *)
val kernel : t -> arch:string -> version:string -> Gpusim.Events.totals -> unit

(** {2 Monitoring recording} *)

(** An SLO burn-rate alert transitioned into firing. *)
val alert : t -> slo:string -> unit

(** The flight recorder dumped an incident bundle of [kind]
    (["alert"], ["sdc"] or ["device-eject"]). *)
val incident : t -> kind:string -> unit

(** {1 Reading} *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int
val batches : t -> int
val coalesced : t -> int
val retries : t -> int
val faults : t -> int
val quarantines : t -> int
val fallbacks : t -> int
val degraded : t -> int
val bad_requests : t -> int
val backoff_total_us : t -> float
val sdc_checks : t -> int
val sdc_catches : t -> int
val sdc_false_alarms : t -> int
val sdc_reexecs : t -> int
val admitted : t -> int
val admitted_interactive : t -> int
val admitted_batch : t -> int
val sheds : t -> int
val sheds_interactive : t -> int
val sheds_batch : t -> int
val deadline_expiries : t -> int
val deadline_witness_serves : t -> int
val brownout_transitions : t -> int

(** Highest brownout level ever entered (0 if the controller never
    fired). *)
val brownout_max_level : t -> int

(** Units of work shed per brownout ladder step, sorted by step name. *)
val brownout_sheds : t -> (string * int) list

(** Did any overload machinery fire (shed, deadline expiry, witness
    serve or brownout transition)? Admission traffic alone does not
    count: a zero-load replay through the queue keeps this false and the
    report unchanged. *)
val overload_fired : t -> bool

(** {2 Fleet reading} *)

val fleet_dispatches : t -> int
val fleet_reroutes : t -> int
val fleet_hedges_fired : t -> int
val fleet_hedges_won : t -> int
val fleet_ejects : t -> int
val fleet_readmits : t -> int
val fleet_deaths : t -> int
val fleet_drains : t -> int
val fleet_promotions : t -> int

(** One device's aggregates: dispatch/hedge-win/eject/readmit counters
    plus the last health score and lifecycle state reported for it. *)
type fleet_row = {
  fd_dispatches : int;
  fd_hedge_wins : int;
  fd_ejects : int;
  fd_readmits : int;
  fd_health : float;
  fd_state : string;
}

(** Per-device rows sorted by device label; empty unless a fleet was
    attached. *)
val fleet_rows : t -> (string * fleet_row) list

(** Did any fleet machinery fire (a dispatch, reroute, hedge or
    lifecycle event)? False on every fleet-less service, which gates
    the report's fleet section off. *)
val fleet_fired : t -> bool

(** {2 Monitoring reading} *)

val alerts : t -> int
val incidents : t -> int

(** Alert counts per SLO name, sorted by name; empty unless an alert
    fired. *)
val alert_rows : t -> (string * int) list

(** Incident counts per trigger kind, sorted by kind; empty unless the
    recorder dumped. *)
val incident_rows : t -> (string * int) list

(** Did any SLO alert fire or incident dump happen? False on every
    unmonitored (or healthy) service, which gates the report's
    monitoring section off. *)
val monitoring_fired : t -> bool

(** Fault counts per version, most-faulting first. *)
val fault_histogram : t -> (string * int) list

(** Per-bucket (hits, misses), sorted by bucket label. *)
val bucket_counts : t -> (string * (int * int)) list

(** Serve counts per winning version, most-served first. *)
val winner_histogram : t -> (string * int) list

(** Empty series report as all-zero. *)
val plan_series : t -> series

val tune_series : t -> series
val run_series : t -> series

(** Witness-check overhead per checked response. *)
val verify_series : t -> series

(** Virtual-time queue wait of admitted requests. *)
val queue_wait_series : t -> series

(** Aggregated kernel counters as ((arch, version), (requests, totals)),
    sorted by (arch, version); empty unless profiling was on. *)
val kernel_rows :
  t -> ((string * string) * (int * Gpusim.Events.totals)) list

(** The text report printed by [reduce-explorer --service] and
    [tangramc serve]. Sections gated on activity (fault tolerance, SDC
    guard, kernel counters) are omitted when their counters are all
    zero, so a default run's report is byte-stable across releases. *)
val report : t -> string

(** One JSON object mirroring {!report} with a stable key order —
    emitting it twice from the same stats yields identical strings. *)
val to_json : t -> string

(** Prometheus text exposition of every counter and latency summary,
    including per-bucket, per-version and per-(arch, version) kernel
    series. When a monitor's [metrics] registry is supplied, its
    windowed time-series families are appended to the document. *)
val to_prometheus : ?metrics:Obs.Metrics.t -> t -> string
