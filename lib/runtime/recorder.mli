(** The black-box flight recorder: a fixed ring of per-request records
    plus bounded incident bundles.

    Recording ({!note}) is O(1) and captures only lightweight facts —
    including the request's trace id; the span tree itself is rebuilt
    from [Obs.Trace]'s ring lazily when an incident is {!dump}ed, so
    the quiet path never pays for tree extraction. A dumped bundle is a
    self-contained JSON document (trigger request + span tree,
    surrounding request window, SLO table, fleet health table, brownout
    level, latest metrics) — everything a postmortem needs without a
    live process to query. *)

type record = {
  rc_seq : int;
  rc_now_us : float;  (** virtual completion time *)
  rc_tid : int;  (** trace id; 0 when tracing was off *)
  rc_arch : string;
  rc_n : int;
  rc_predicted_us : float;
  rc_latency_us : float;
  rc_outcome : string;  (** ["ok"], ["fault"], ["sdc-caught"], ... *)
  rc_device : string option;
}

(** What pulled the handle: an SLO alert, a confirmed silent
    corruption, or a device ejection. *)
type trigger = Alert of string | Sdc | Eject of string

val trigger_kind : trigger -> string

type incident = {
  in_seq : int;  (** sequence number of the triggering request *)
  in_now_us : float;
  in_trigger : trigger;
  in_json : Obs.Json.t;
}

type t

(** [capacity] requests in the ring (default 128); [keep_incidents]
    bundles retained (default 16, oldest evicted).
    @raise Invalid_argument on non-positive sizes. *)
val create : ?capacity:int -> ?keep_incidents:int -> unit -> t

val capacity : t -> int

(** Push one served request into the ring. The current trace id is
    captured here, so call it inside the request's [with_request]
    scope. *)
val note :
  t ->
  now_us:float ->
  arch:string ->
  n:int ->
  predicted_us:float ->
  latency_us:float ->
  outcome:string ->
  ?device:string ->
  unit ->
  record

(** Buffered records, oldest first. *)
val records : t -> record list

(** The newest record (the would-be trigger of the next incident). *)
val last : t -> record option

(** Freeze the ring into an incident bundle. [slos], [fleet] and
    [metrics] are caller-rendered JSON tables (Null when absent);
    the trigger request's span tree rides along when the trace ring
    still holds it. *)
val dump :
  t ->
  now_us:float ->
  trigger:trigger ->
  ?slos:Obs.Json.t ->
  ?fleet:Obs.Json.t ->
  ?brownout:int ->
  ?metrics:Obs.Json.t ->
  unit ->
  incident

(** Retained incidents, newest first. *)
val incidents : t -> incident list

(** Lifetime dump count (retention does not shrink it). *)
val incidents_dumped : t -> int

val record_json : record -> Obs.Json.t
val incident_to_string : incident -> string

(** Structural check of one bundle document — schema marker, trigger
    kind, window array, request, brownout — the contract the tests and
    the CI artifact check both assert. *)
val validate_bundle : Obs.Json.t -> (unit, string) result

val validate_bundle_string : string -> (unit, string) result

val save_incident : incident -> string -> unit

(** Write every retained incident into [dir] (created when missing) as
    [incident-<seq>-<kind>.json]; returns the paths, oldest first. *)
val save_all : t -> string -> string list
