(* Online result verification: the ABFT-style witness.

   Every exact service response is checked against a host-side witness
   before it leaves the engine. For synthetic inputs the witness is the
   planner's closed form (O(pattern), never O(n)); for dense inputs the
   input is cut into [sample] stripes, each stripe is folded
   independently and the stripe partials are folded again — the same
   answer computed through a deliberately different association, so the
   witness and the versions cannot share a wrong order. The comparison
   runs under the {!Tolerance} model: integer and min/max reductions
   must match exactly, float sums may drift by the version's
   reassociation bound and no further.

   The guard itself never re-executes anything — classification of a
   failed check (one-off flip vs reproducible deviation) and the voting
   walk live in {!Service}, which owns the ladder and the breakers. *)

module P = Synthesis.Planner
module R = Gpusim.Runner

type config = {
  g_enabled : bool;
  g_sample : int;  (** witness stripes for dense recomputation *)
  g_votes : int;  (** redundant executions budget per suspect result *)
}

let default = { g_enabled = true; g_sample = 4; g_votes = 2 }

let config ?(enabled = true) ?(sample = default.g_sample)
    ?(votes = default.g_votes) () : config =
  if sample < 1 then invalid_arg "Guard.config: sample must be positive";
  if votes < 1 then invalid_arg "Guard.config: votes must be positive";
  { g_enabled = enabled; g_sample = sample; g_votes = votes }

type check = { ck_expected : float; ck_tol : Tolerance.t }

let expected (c : check) : float = c.ck_expected
let tolerance (c : check) : Tolerance.t = c.ck_tol

let witness ~(planner : P.t) ~(sample : int) (input : R.input) : float =
  match input with
  | R.Synthetic _ -> P.reference_input planner input
  | R.Dense a ->
      let n = Array.length a in
      if n = 0 then P.reference_input planner input
      else begin
        let parts = max 1 (min sample n) in
        let stripes fold =
          Array.init parts (fun i ->
              let lo = i * n / parts and hi = (i + 1) * n / parts in
              fold (Array.sub a lo (hi - lo)))
        in
        match planner.P.op with
        | Tir.Ast.At_min | Tir.Ast.At_max ->
            (* Associative (and idempotent): refolding stripe partials
               with the op itself is a legal re-association. *)
            P.reference planner (stripes (P.reference planner))
        | Tir.Ast.At_add | Tir.Ast.At_sub ->
            (* Subtraction is not associative: each stripe partial is
               -(stripe sum), and refolding those with subtract would
               flip the sign back to +sum. Mirror reference_synthetic:
               fold stripes with add semantics, negate once at the end. *)
            let sum arr = Array.fold_left ( +. ) 0.0 arr in
            let total = sum (stripes sum) in
            if planner.P.op = Tir.Ast.At_sub then -.total else total
      end

let make ~(planner : P.t) ?version ~(input : R.input) ~(sample : int) () :
    check =
  {
    ck_expected = witness ~planner ~sample input;
    ck_tol =
      Tolerance.bound ~op:planner.P.op ~elem:planner.P.elem ?version
        ~n:(R.input_size input)
        ~sum_abs:(Tolerance.sum_abs_of_input input)
        ();
  }

let acceptable (c : check) ~(got : float) : bool =
  Tolerance.acceptable c.ck_tol ~expected:c.ck_expected ~got

let margin (c : check) ~(got : float) : float =
  Tolerance.margin c.ck_tol ~expected:c.ck_expected ~got

(* Two executions of the same deterministic version agree when they land
   within one tolerance window of each other — for exact reductions,
   bitwise equality. An out-of-tolerance result that *agrees* with its
   own re-execution reproduced deterministically, so it cannot be a
   one-off flip: the alarm is the model's, not the version's. *)
let agree (c : check) (a : float) (b : float) : bool =
  match c.ck_tol with
  | Tolerance.Exact -> a = b
  | Tolerance.Absolute bound ->
      (match (Float.classify_float a, Float.classify_float b) with
      | (Float.FP_nan | Float.FP_infinite), _
      | _, (Float.FP_nan | Float.FP_infinite) ->
          false
      | _ -> Float.abs (a -. b) <= bound)
