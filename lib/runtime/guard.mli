(** Online result verification against an ABFT-style witness.

    A {!check} pairs the host-recomputed expected value (closed form for
    synthetic inputs; a stripe-partitioned re-fold for dense inputs,
    deliberately associated differently from both the versions and the
    plain sequential reference) with the request's {!Tolerance} bound.
    {!Service} builds one check per exact response; a result the witness
    rejects is treated as suspected silent data corruption and goes to
    redundant re-execution and voting (orchestrated by the service,
    which owns the fallback ladder and the circuit breakers). *)

(** Verification policy. *)
type config = {
  g_enabled : bool;  (** verify exact responses at all (default true) *)
  g_sample : int;
      (** stripes of the dense-input witness partition (default 4) *)
  g_votes : int;
      (** redundant-execution budget per suspect result: one dual-modular
          re-run on the suspect's own rung plus [g_votes - 1] runs down
          the ladder (default 2) *)
}

val default : config

(** Validating constructor.
    @raise Invalid_argument when [sample] or [votes] is not positive. *)
val config : ?enabled:bool -> ?sample:int -> ?votes:int -> unit -> config

(** One request's witness value and tolerance bound. *)
type check

val expected : check -> float
val tolerance : check -> Tolerance.t

(** The witness recomputation alone (exposed for benches and tests). *)
val witness :
  planner:Synthesis.Planner.t -> sample:int -> Gpusim.Runner.input -> float

(** Build the check for one request. [version] tightens the float
    tolerance with the serving version's reduction shape. *)
val make :
  planner:Synthesis.Planner.t ->
  ?version:Synthesis.Version.t ->
  input:Gpusim.Runner.input ->
  sample:int ->
  unit ->
  check

(** Does the witness accept this result? *)
val acceptable : check -> got:float -> bool

(** Deviation from the witness as a fraction of the bound (> 1.0 means
    rejected). For diagnostics. *)
val margin : check -> got:float -> float

(** Do two executions agree within one tolerance window (bitwise, for
    exact reductions)? A suspect that agrees with its own re-execution
    reproduced deterministically and is a false alarm, not a flip. *)
val agree : check -> float -> float -> bool
