(** Analytic bounds on legal result deviation for generated reductions.

    All 88 versions compute the same reduction in a different order.
    Integer and min/max reductions are order-independent, so any
    deviation from the reference is corruption ({!Exact}). Float sums
    legally drift by reassociation rounding; the {!Absolute} bound
    scales unit roundoff by the number of rounding steps the version's
    reduction shape — grain chain, shared/shuffle tree depth, atomic
    fan-in over blocks (from {!Synthesis.Version} metadata) — plus the
    sequential reference can perform, times [sum_abs], the exact sum of
    input magnitudes. A result outside the bound cannot be explained by
    rounding and is treated as silent data corruption. *)

type t =
  | Exact  (** any deviation is corruption *)
  | Absolute of float  (** legal iff [|got - expected| <= bound] *)

(** Derive the bound for one request shape. [version] tightens the float
    bound using the version's reduction shape; omitting it falls back to
    a worst-case sequential chain. [sum_abs] is the sum of input
    magnitudes (see {!sum_abs_of_input}). *)
val bound :
  op:Tir.Ast.atomic_kind ->
  elem:Device_ir.Ir.scalar ->
  ?version:Synthesis.Version.t ->
  n:int ->
  sum_abs:float ->
  unit ->
  t

(** Whether the analytic model covers one of the symbolic prover's
    reassociation certificates: true iff the safety-scaled rounding-step
    chain the {!bound} computation assumes for [version] at the
    certificate's size dominates the machine-measured term depth
    recorded in the certificate. An admitted certificate means the
    prover's modulo-reassociation equivalence is within the deviation
    this module already tolerates. *)
val admits_certificate :
  ?version:Synthesis.Version.t -> Symbolic.Prove.cert -> bool

(** Whether [got] is a legal answer when the true value is [expected].
    NaN and infinite [got] are never acceptable under an {!Absolute}
    bound; under {!Exact} only bitwise-equal finite values (or equal
    infinities, for min/max identities) pass. *)
val acceptable : t -> expected:float -> got:float -> bool

(** Deviation as a fraction of the bound (deviation itself for
    {!Exact}); [> 1.0] means out of tolerance. For diagnostics. *)
val margin : t -> expected:float -> got:float -> float

val describe : t -> string

(** Exact sum of element magnitudes of a runner input; closed form for
    synthetic buffers (never walks the logical size). *)
val sum_abs_of_input : Gpusim.Runner.input -> float
