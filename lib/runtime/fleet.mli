(** A simulated multi-device fleet: health-aware routing, fail-slow
    detection, hedged execution and live drain/recovery.

    The fleet owns N device slots, each with its own architecture
    descriptor, seeded fault stream ({!Gpusim.Fault} failure profiles)
    and in-flight counter. {!Service} routes through the fleet when one
    is attached ([Service.attach_fleet]); the single-device path is
    untouched otherwise.

    {b Health.} Each device carries an EWMA health score fed by the
    predicted/observed latency ratio of its dispatches, where
    "predicted" is the static cost model's no-execution estimate
    ([Planner.static_cost] over [Gpusim.Cost.of_static]). A fail-slow
    device is detected as ratio drift — it keeps answering, passing any
    liveness check, while its score decays toward ejection. The scorer
    ejects below [fl_eject_below] and readmits above the strictly
    higher [fl_readmit_above] (hysteresis); ejected and suspect devices
    receive a probe every [fl_probe_period] fleet dispatches — the only
    traffic that can move their score once regular routing has stopped
    feeding them (up to readmission for a recovered device, down to
    ejection for a still-degraded one).

    {b Routing.} Least-loaded among healthy devices (health at or above
    [fl_suspect_below]), spillover to suspect ones when no healthy
    device is routable, never to dead, draining, drained, ejected or
    spare devices. When the active pool empties, a warm spare is
    promoted.

    {b Hedging.} When enabled, a first attempt whose observed latency
    exceeds the p95-based hedge deadline is speculatively re-dispatched
    to a second device; first answer (in virtual time) wins and the
    loser is cancelled before verification, so it charges no response
    to {!Stats}.

    All decisions are deterministic functions of (seeds, request
    sequence): chaos replays are bit-stable. *)

module Fault = Gpusim.Fault

(** Device lifecycle. [Spare] devices serve nothing until promoted;
    [Draining] devices finish in-flight work and take no new
    dispatches, becoming [Drained]; [Ejected] devices only see
    readmission probes; [Dead] is terminal. *)
type state = Spare | Active | Draining | Drained | Ejected | Dead

val state_name : state -> string

(** One device slot. *)
type device

type config = {
  fl_alpha : float;  (** EWMA weight of the newest ratio sample *)
  fl_suspect_below : float;
      (** healthy at or above this score, suspect (spillover-only) below *)
  fl_eject_below : float;  (** ejected below this score *)
  fl_readmit_above : float;
      (** an ejected device readmits at or above this; must exceed
          [fl_eject_below] (hysteresis) *)
  fl_probe_period : int;
      (** fleet dispatches between readmission probes of ejected devices *)
  fl_failure_penalty : float;
      (** ratio sample charged when a dispatch produces no answer *)
  fl_hedge_mult : float;  (** hedge deadline = observed p95 × this *)
  fl_hedge_min_samples : int;
      (** latency samples required before hedging arms *)
}

(** alpha 0.3, suspect 0.6, eject 0.3, readmit 0.7, probe period 32,
    failure penalty 0, hedge ×2 after 16 samples. *)
val default_config : config

(** One slot's specification. *)
type spec = {
  sp_arch : Gpusim.Arch.t;
  sp_profile : Fault.profile;
  sp_fault_plan : Fault.plan option;
      (** explicit private fault plan; when [None], a {!Fault.Flaky}
          profile gets a seeded transient-only injector and every other
          profile gets no private stream *)
  sp_spare : bool;
}

val spec :
  ?profile:Fault.profile ->
  ?fault_plan:Fault.plan ->
  ?spare:bool ->
  Gpusim.Arch.t ->
  spec

type t

(** Build a fleet. [seed] decorrelates the private fault streams of
    flaky slots.
    @raise Invalid_argument on an empty or all-spare device list, a
    malformed profile, or inconsistent thresholds. *)
val create : ?config:config -> ?seed:int -> spec list -> t

(** Point the fleet at the service's stats so per-device counters and
    lifecycle events land in the report's fleet section.
    [Service.attach_fleet] calls this. *)
val set_stats : t -> Stats.t -> unit

val set_hedging : t -> bool -> unit
val hedging : t -> bool

(** Fired after an ejection has been recorded and a spare (if any)
    promoted. The service points this at the flight recorder so the
    incident bundle captures the ejection moment. *)
val set_on_eject : t -> (device -> unit) -> unit

(** The log-event codes this module emits (code, meaning), all
    registered in [Device_ir.Diag.registry]. *)
val event_codes : (string * string) list

(** {1 Routing and dispatch} *)

(** Pick a device for the next dispatch, or [None] when nothing is
    routable even after promoting a spare. [excluding] removes one
    device from consideration (the hedge's primary); [probe] (default
    true) allows the periodic probe of ejected and suspect devices —
    hedge routing passes [~probe:false]. *)
val route : ?excluding:device -> ?probe:bool -> t -> device option

(** Would the device's fail-stop profile kill it on its next dispatch?
    The caller checks this before {!begin_dispatch} and reroutes — a
    dying device never swallows a request. *)
val next_dispatch_kills : device -> bool

(** Mark a fail-stopped device dead (logs TFLT001, promotes a spare). *)
val mark_dead : t -> device -> unit

(** Count one dispatch bounced off a dying device. *)
val reroute : t -> unit

val begin_dispatch : t -> device -> unit

(** Decrement in-flight; a draining device whose last in-flight
    dispatch completes becomes [Drained]. *)
val end_dispatch : t -> device -> unit

(** Throughput multiplier of the in-progress dispatch (from the
    device's failure profile; 1.0 when nominal). *)
val slowdown : device -> float

(** The device's private fault injector, armed around its dispatches. *)
val fault_stream : device -> Fault.t option

(** Accumulate virtual busy time ({!makespan_us}, goodput). *)
val charge_busy : device -> float -> unit

(** {1 Health} *)

(** Fold one dispatch's predicted/observed ratio (clamped to [0, 2])
    into the device's EWMA; eject/readmit on threshold crossings. *)
val observe : t -> device -> ratio:float -> unit

(** Health-charge a dispatch that produced no answer. *)
val observe_failure : t -> device -> unit

(** {1 Hedging} *)

(** Record one request's observed completion latency (virtual us). *)
val note_latency : t -> float -> unit

val observed_p95_us : t -> float option

(** The speculative re-dispatch deadline; [None] until hedging is on
    and [fl_hedge_min_samples] latencies have been observed. *)
val hedge_deadline_us : t -> float option

(** Count and log a fired hedge (TFLT004). *)
val hedge_fired : t -> device -> deadline_us:float -> observed_us:float -> unit

(** The hedge finished first on [device]. *)
val hedge_won : t -> device -> unit

(** {1 Lifecycle operations} *)

(** Mark-drain device [id]: it finishes in-flight work and takes no new
    dispatches. A spare is promoted to cover it.
    @raise Invalid_argument on an unknown id. *)
val drain : t -> int -> unit

(** Operator readmission: return a drained, ejected or spare device to
    the pool with a reset health score.
    @raise Invalid_argument on an unknown or dead device. *)
val activate : t -> int -> unit

(** {1 Reading} *)

val devices : t -> device list
val n_devices : t -> int
val find : t -> int -> device option
val id : device -> int
val arch : device -> Gpusim.Arch.t
val profile : device -> Fault.profile
val dev_state : device -> state
val health : device -> float
val dispatches : device -> int
val inflight : device -> int
val busy_us : device -> float
val hedge_wins : device -> int

(** Stable device label, ["d0:kepler-k40c"]. *)
val label : device -> string

val total_dispatches : t -> int

(** Virtual makespan: the busiest device's accumulated kernel time —
    what fleet goodput divides by. *)
val makespan_us : t -> float

(** Injected-faulty devices (fail-stop, fail-slow or flaky profile)
    the scorer has not yet taken out of the serving pool. The fleet
    bench's acceptance gate requires this empty by end of replay. *)
val undetected_faulty : t -> device list
