(* Histogram with privatised shared-memory bins — the paper's motivating
   use-case for atomic instructions on shared memory (Sections I and
   II-A.2, citing Gomez-Luna et al. [12][13]).

   Each block keeps a 256-bin copy of the histogram in shared memory,
   updated with shared-memory atomics during a grid-stride sweep, then
   merges it into the global histogram with global atomics. Under skewed
   inputs the shared-memory updates contend heavily; the gap between
   Kepler's lock-update-unlock implementation and Maxwell's native units is
   exactly the microarchitectural difference the paper's qualifiers let
   Tangram exploit. *)

module Ir = Device_ir.Ir
module I = Gpusim.Interp

let bins = 256
let block = 256

let kernel : Ir.kernel =
  let open Ir in
  {
    k_name = "histogram256";
    k_params = [ ("SourceSize", I32); ("Trip", I32) ];
    k_arrays = [ ("input_x", F32); ("hist_out", F32) ];
    k_shared = [ { sh_name = "sh_hist"; sh_ty = F32; sh_size = Static_size bins } ];
    k_body =
      [
        if_ (tid <: Int bins) [ store_shared "sh_hist" tid (Float 0.0) ] [];
        Sync;
        for_ "it" ~init:(Int 0)
          ~cond:(Reg "it" <: Param "Trip")
          ~step:(Reg "it" +: Int 1)
          [
            let_ "gi" ((Reg "it" *: (gdim *: bdim)) +: ((bid *: bdim) +: tid));
            if_
              (Reg "gi" <: Param "SourceSize")
              [
                load_global "x" "input_x" (Reg "gi");
                atomic ~space:Shared ~op:A_add "sh_hist" (Reg "x") (Float 1.0);
              ]
              [];
          ];
        Sync;
        if_ (tid <: Int bins)
          [
            load_shared "h" "sh_hist" tid;
            atomic ~space:Global ~op:A_add "hist_out" tid (Reg "h");
          ]
          [];
      ];
  }

let compiled = lazy (Gpusim.Compiled.compile kernel)

type outcome = { histogram : float array; time_us : float }

(** Histogram of [data] (values must lie in [0, 256)) on the simulated
    [arch]. *)
let run ?(opts = I.exact) ~(arch : Gpusim.Arch.t) (data : float array) : outcome =
  Device_ir.Validate.check_kernel_exn kernel;
  Device_ir.Diag.fail_on_errors (Device_ir.Race.check_kernel kernel);
  let n = Array.length data in
  if n = 0 then invalid_arg "Histogram.run: empty input";
  let grid = max 1 (min ((n + (block * 8) - 1) / (block * 8)) (arch.Gpusim.Arch.sms * 8)) in
  let trip = (n + (grid * block) - 1) / (grid * block) in
  let input = I.make_buffer ~read_only:true ~ty:Ir.F32 ~id:0 data in
  let hist = I.make_buffer ~ty:Ir.F32 ~id:1 (Array.make bins 0.0) in
  let lr =
    I.run_kernel ~arch ~opts (Lazy.force compiled) ~grid ~block ~shared_elems:0
      ~globals:[| input; hist |]
      ~params:[| Gpusim.Value.VI n; Gpusim.Value.VI trip |]
  in
  let cost = Gpusim.Cost.of_launch arch lr in
  { histogram = hist.I.data; time_us = cost.Gpusim.Cost.time_us }

(** Host reference. *)
let reference (data : float array) : float array =
  let h = Array.make bins 0.0 in
  Array.iter
    (fun x ->
      let b = int_of_float x in
      if b < 0 || b >= bins then invalid_arg "Histogram.reference: value out of range";
      h.(b) <- h.(b) +. 1.0)
    data;
  h
