(* Parallel prefix sum (scan) on the simulated GPU.

   The paper motivates reduction as the building block of Scan [14], and
   the warp-shuffle pass's target pattern — Kogge-Stone — is named after the
   scan network. This module implements the classical three-phase
   multi-block inclusive scan with warp-level Kogge-Stone steps built on
   [__shfl_up] (the up-exchange the paper's Section III-C pass would emit
   for a loop iterating in the positive direction):

   1. every block scans its tile: Kogge-Stone within each warp, a
      warp-of-warp-totals scan by warp 0, then per-warp offsets are added;
      the block total goes to a block-sums buffer;
   2. one thread turns the block sums into exclusive block offsets (the
      number of blocks is tiny compared to the input);
   3. every block adds its offset to its tile.

   Results are exact for inputs representable in double precision; the
   returned time is the three launches under the architecture's cost
   model. *)

module Ir = Device_ir.Ir
module I = Gpusim.Interp

let block = 256
let nwarps = block / 32

(* Kogge-Stone inclusive scan of register [x] within each warp:
   for (d = 1; d < 32; d *= 2) { t = __shfl_up(x, d); if (lane >= d) x += t; } *)
let warp_scan (x : string) ~(t : string) ~(d : string) : Ir.stmt list =
  [
    Ir.for_ d ~init:(Ir.Int 1)
      ~cond:Ir.(Reg d <: Int 32)
      ~step:Ir.(Reg d *: Int 2)
      [
        Ir.shfl_up t (Ir.Reg x) (Ir.Reg d) ~width:32;
        Ir.if_ Ir.(lane_id >=: Reg d) [ Ir.let_ x Ir.(Reg x +: Reg t) ] [];
      ];
  ]

let scan_block_kernel : Ir.kernel =
  let open Ir in
  {
    k_name = "scan_block";
    k_params = [ ("SourceSize", I32) ];
    k_arrays = [ ("input_x", F32); ("scanned", F32); ("block_sums", F32) ];
    k_shared =
      [ { sh_name = "warp_totals"; sh_ty = F32; sh_size = Static_size 32 } ];
    k_body =
      [
        if_ (tid <: Int 32) [ store_shared "warp_totals" tid (Float 0.0) ] [];
        Sync;
        let_ "gi" ((bid *: bdim) +: tid);
        let_ "x" (Float 0.0);
        if_ (Reg "gi" <: Param "SourceSize") [ load_global "x" "input_x" (Reg "gi") ] [];
      ]
      @ warp_scan "x" ~t:"t" ~d:"d"
      @ [
          (* last lane of each warp publishes the warp total *)
          if_ (lane_id =: Int 31) [ store_shared "warp_totals" warp_id (Reg "x") ] [];
          Sync;
          (* warp 0 scans the warp totals *)
          if_ (warp_id =: Int 0)
            ([
               let_ "wt" (Float 0.0);
               if_ (lane_id <: Int nwarps) [ load_shared "wt" "warp_totals" lane_id ] [];
             ]
            @ warp_scan "wt" ~t:"t2" ~d:"d2"
            @ [ if_ (lane_id <: Int nwarps) [ store_shared "warp_totals" lane_id (Reg "wt") ] [] ])
            [];
          Sync;
          (* add the exclusive prefix of the preceding warps *)
          if_ (warp_id >: Int 0)
            [
              load_shared "prev" "warp_totals" (warp_id -: Int 1);
              let_ "x" (Reg "x" +: Reg "prev");
            ]
            [];
          if_ (Reg "gi" <: Param "SourceSize")
            [ store_global "scanned" (Reg "gi") (Reg "x") ]
            [];
          (* the block total is the last thread's inclusive value *)
          if_ (tid =: (bdim -: Int 1)) [ store_global "block_sums" bid (Reg "x") ] [];
        ];
  }

(* single-thread exclusive scan of the block sums *)
let scan_sums_kernel : Ir.kernel =
  let open Ir in
  {
    k_name = "scan_sums";
    k_params = [ ("NumBlocks", I32) ];
    k_arrays = [ ("block_sums", F32) ];
    k_shared = [];
    k_body =
      [
        let_ "acc" (Float 0.0);
        for_ "i" ~init:(Int 0)
          ~cond:(Reg "i" <: Param "NumBlocks")
          ~step:(Reg "i" +: Int 1)
          [
            load_global "s" "block_sums" (Reg "i");
            store_global "block_sums" (Reg "i") (Reg "acc");
            let_ "acc" (Reg "acc" +: Reg "s");
          ];
      ];
  }

let add_offsets_kernel : Ir.kernel =
  let open Ir in
  {
    k_name = "scan_add_offsets";
    k_params = [ ("SourceSize", I32) ];
    k_arrays = [ ("scanned", F32); ("block_sums", F32) ];
    k_shared = [];
    k_body =
      [
        let_ "gi" ((bid *: bdim) +: tid);
        if_
          (Reg "gi" <: Param "SourceSize")
          [
            load_global "off" "block_sums" bid;
            load_global "x" "scanned" (Reg "gi");
            store_global "scanned" (Reg "gi") (Reg "x" +: Reg "off");
          ]
          [];
      ];
  }

let compiled =
  lazy
    ( Gpusim.Compiled.compile scan_block_kernel,
      Gpusim.Compiled.compile scan_sums_kernel,
      Gpusim.Compiled.compile add_offsets_kernel )

type outcome = { scanned : float array; time_us : float }

(** Inclusive prefix sum of [input] on the simulated [arch]. *)
let inclusive ?(opts = I.exact) ~(arch : Gpusim.Arch.t) (input : float array) :
    outcome =
  List.iter Device_ir.Validate.check_kernel_exn
    [ scan_block_kernel; scan_sums_kernel; add_offsets_kernel ];
  (* the cleanup kernel runs one thread of one block; checking it at the
     default model geometry would invent threads that do not exist *)
  Device_ir.Diag.fail_on_errors
    (Device_ir.Race.check_kernel scan_block_kernel
    @ Device_ir.Race.check_kernel ~block:1 ~grid:1 scan_sums_kernel
    @ Device_ir.Race.check_kernel add_offsets_kernel);
  let n = Array.length input in
  if n = 0 then invalid_arg "Scan.inclusive: empty input";
  let grid = (n + block - 1) / block in
  let k1, k2, k3 = Lazy.force compiled in
  let input_b = I.make_buffer ~read_only:true ~ty:Ir.F32 ~id:0 input in
  let scanned = I.make_buffer ~ty:Ir.F32 ~id:1 (Array.make n 0.0) in
  let sums = I.make_buffer ~ty:Ir.F32 ~id:2 (Array.make grid 0.0) in
  let lr1 =
    I.run_kernel ~arch ~opts k1 ~grid ~block ~shared_elems:0
      ~globals:[| input_b; scanned; sums |]
      ~params:[| Gpusim.Value.VI n |]
  in
  let lr2 =
    I.run_kernel ~arch ~opts k2 ~grid:1 ~block:1 ~shared_elems:0 ~globals:[| sums |]
      ~params:[| Gpusim.Value.VI grid |]
  in
  let lr3 =
    I.run_kernel ~arch ~opts k3 ~grid ~block ~shared_elems:0
      ~globals:[| scanned; sums |]
      ~params:[| Gpusim.Value.VI n |]
  in
  let costs = List.map (Gpusim.Cost.of_launch arch) [ lr1; lr2; lr3 ] in
  { scanned = scanned.I.data; time_us = Gpusim.Cost.of_program arch ~n_inits:0 costs }

(** Exclusive scan, derived by shifting the inclusive result. *)
let exclusive ?opts ~arch (input : float array) : outcome =
  let o = inclusive ?opts ~arch input in
  let n = Array.length input in
  let shifted = Array.make n 0.0 in
  for i = 1 to n - 1 do
    shifted.(i) <- o.scanned.(i - 1)
  done;
  { o with scanned = shifted }

(** Host reference. *)
let reference (input : float array) : float array =
  let acc = ref 0.0 in
  Array.map
    (fun x ->
      acc := !acc +. x;
      !acc)
    input
